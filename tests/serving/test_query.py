"""Query layer: endpoints, Re_tau bracketing, y+ interpolation, caching."""

import numpy as np
import pytest

from repro.serving import StatisticsService, StatsStore
from repro.serving.synthetic import populate_store, synthetic_result

RE_TAUS = (180.0, 550.0, 1000.0)


@pytest.fixture
def service(tmp_path):
    store = populate_store(tmp_path, RE_TAUS)
    return StatisticsService(store, cache_size=64, dataset_cache_size=4)


class TestEndpoints:
    def test_law_of_wall_exact_re_tau(self, service):
        resp = service.law_of_wall(180.0, (5.0, 30.0, 100.0))
        assert resp["query"] == "law_of_wall"
        assert resp["re_tau_sources"] == [180.0]
        assert resp["y_plus"] == [5.0, 30.0, 100.0]
        assert len(resp["u_plus"]) == 3
        # the synthetic profile is Reichardt's: near-linear at y+=5,
        # log-layer by y+=100 — U+ must be monotone over this sweep
        u = resp["u_plus"]
        assert u[0] < u[1] < u[2]
        assert 3.0 < u[0] < 7.0  # U+ ~ y+ in the viscous sublayer

    def test_variance_components(self, service):
        for comp in ("u", "v", "w", "uv"):
            resp = service.variance(550.0, comp, 15.0)
            assert resp["component"] == comp
            assert len(resp["value_plus"]) == 1
        # streamwise variance peaks near the wall, dominates v and w there
        uu = service.variance(550.0, "u", 15.0)["value_plus"][0]
        vv = service.variance(550.0, "v", 15.0)["value_plus"][0]
        assert uu > vv > 0.0

    def test_variance_bad_component(self, service):
        with pytest.raises(ValueError, match="component"):
            service.variance(180.0, "q", 15.0)

    def test_spectrum_endpoint(self, service):
        resp = service.spectrum(180.0, "x", "u", 15.0)
        assert resp["query"] == "spectrum"
        assert resp["direction"] == "x"
        assert resp["re_tau_sources"] == [180.0]
        assert len(resp["energy"]) == len(resp["wavenumbers"])
        assert all(e >= 0.0 for e in resp["energy"])

    def test_spectrum_bad_inputs(self, service):
        with pytest.raises(ValueError, match="direction"):
            service.spectrum(180.0, "y", "u", 15.0)
        with pytest.raises(ValueError, match="component"):
            service.spectrum(180.0, "x", "uv", 15.0)

    def test_empty_store(self, tmp_path):
        svc = StatisticsService(StatsStore(tmp_path / "empty"))
        with pytest.raises(FileNotFoundError, match="empty"):
            svc.law_of_wall(180.0, 10.0)


class TestInterpolation:
    def test_interior_request_brackets_two_sources(self, service):
        resp = service.law_of_wall(300.0, (10.0, 50.0))
        assert resp["re_tau_sources"] == [180.0, 550.0]
        # the blend lies between its endpoint profiles
        lo = service.law_of_wall(180.0, (10.0, 50.0))["u_plus"]
        hi = service.law_of_wall(550.0, (10.0, 50.0))["u_plus"]
        for blended, a, b in zip(resp["u_plus"], lo, hi):
            assert min(a, b) - 1e-12 <= blended <= max(a, b) + 1e-12

    def test_log_re_tau_weights(self, service):
        """The blend is linear in log(Re_tau): at the geometric mean of
        the bracket the weights are exactly (0.5, 0.5)."""
        mid = float(np.sqrt(180.0 * 550.0))
        resp = service.law_of_wall(mid, 30.0)
        lo = service.law_of_wall(180.0, 30.0)["u_plus"][0]
        hi = service.law_of_wall(550.0, 30.0)["u_plus"][0]
        np.testing.assert_allclose(resp["u_plus"][0], 0.5 * (lo + hi), rtol=1e-12)

    def test_out_of_range_clamps_to_nearest(self, service):
        low = service.law_of_wall(50.0, 10.0)
        high = service.law_of_wall(9999.0, 10.0)
        assert low["re_tau_sources"] == [180.0]
        assert high["re_tau_sources"] == [1000.0]

    def test_spectrum_uses_nearest_source_only(self, service):
        resp = service.spectrum(480.0, "z", "w", 30.0)
        assert resp["re_tau_sources"] == [550.0]

    def test_y_plus_interpolation_matches_numpy(self, tmp_path):
        """A profile query at arbitrary y+ is np.interp over the stored
        lower-half wall-unit profile."""
        result, config = synthetic_result(180.0)
        store = StatsStore(tmp_path)
        store.publish(result, config)
        svc = StatisticsService(store)
        y = np.asarray(result["y"])
        half = y <= 0.0
        y_plus = (1.0 + y[half]) * result["u_tau"] / (1.0 / 180.0)
        expect = np.interp(37.5, y_plus, np.asarray(result["U"])[half] / result["u_tau"])
        got = svc.law_of_wall(180.0, 37.5)["u_plus"][0]
        np.testing.assert_allclose(got, expect, rtol=1e-12)

    def test_nsamples_is_min_over_sources(self, service):
        resp = service.law_of_wall(300.0, 10.0)
        ns = [
            service.law_of_wall(r, 10.0)["nsamples"] for r in resp["re_tau_sources"]
        ]
        assert resp["nsamples"] == min(ns)


class TestCaching:
    def test_response_cache_hit_counters(self, service):
        service.law_of_wall(180.0, (10.0, 50.0))
        before = service.cache_info()["responses"]
        service.law_of_wall(180.0, (10.0, 50.0))
        after = service.cache_info()["responses"]
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_distinct_queries_miss(self, service):
        service.law_of_wall(180.0, 10.0)
        m0 = service.cache_info()["responses"]["misses"]
        service.law_of_wall(180.0, 11.0)
        service.variance(180.0, "u", 10.0)
        assert service.cache_info()["responses"]["misses"] == m0 + 2

    def test_dataset_cache_avoids_reloads(self, service):
        service.law_of_wall(180.0, 10.0)
        d0 = service.cache_info()["datasets"]
        service.law_of_wall(180.0, 20.0)  # new response, same dataset
        d1 = service.cache_info()["datasets"]
        assert d1["hits"] == d0["hits"] + 1
        assert d1["misses"] == d0["misses"]

    def test_clear_caches(self, service):
        service.law_of_wall(180.0, 10.0)
        service.clear_caches()
        info = service.cache_info()
        assert info["responses"]["size"] == 0
        assert info["datasets"]["size"] == 0

    def test_lru_eviction_bounded(self, tmp_path):
        store = populate_store(tmp_path, (180.0,))
        svc = StatisticsService(store, cache_size=4)
        for i in range(10):
            svc.law_of_wall(180.0, float(i))
        info = svc.cache_info()["responses"]
        assert info["size"] == 4
        assert info["maxsize"] == 4

    def test_warm_answers_without_store(self, service, tmp_path):
        """A warm cache answers from memory: deleting the store files
        underneath does not break repeated queries."""
        resp = service.spectrum(180.0, "x", "u", 15.0)
        import shutil

        shutil.rmtree(service.store.root)
        again = service.spectrum(180.0, "x", "u", 15.0)
        assert again is resp

    def test_store_path_coerced(self, tmp_path):
        populate_store(tmp_path, (180.0,))
        svc = StatisticsService(tmp_path)  # plain path, not a StatsStore
        assert svc.law_of_wall(180.0, 10.0)["re_tau_sources"] == [180.0]
