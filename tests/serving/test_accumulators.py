"""Streaming-vs-batch statistics identity, including restart and shrink.

The acceptance property of the streaming accumulator: a streamed run's
profiles and spectra match the batch ``stats/`` functions — bit-for-bit
in serial (identical operations in identical order), and to the
documented :data:`repro.serving.REDUCTION_RTOL` across ranks (the
allreduce regroups the floating-point sums) — and the match survives a
mid-run kill/restart and an elastic shrink with no samples lost.
"""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.checkpoint import CheckpointRotation
from repro.mpi.simmpi import FaultEvent, FaultPlan, run_spmd
from repro.pencil.distributed import DistributedChannelDNS, run_supervised_spmd
from repro.serving import REDUCTION_RTOL, StatsStore, StreamingStatistics
from repro.stats.spectra import energy_spectrum_x, energy_spectrum_z

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)


def _serial_reference(nsteps: int, every: int = 1):
    """Streamed serial run: the oracle the resilience tests compare against."""
    dns = ChannelDNS(CFG)
    dns.initialize()
    stream = dns.attach_streaming(every=every)
    dns.run(nsteps)
    return dns, stream


def _assert_matches(result: dict, ref: dict, rtol: float, names=None):
    for name in names or ("U", "uu", "vv", "ww", "uv"):
        np.testing.assert_allclose(
            result[name], ref[name], rtol=rtol, atol=1e-14, err_msg=name
        )


class TestSerialIdentity:
    def test_profiles_bit_identical_to_running_statistics(self):
        """Streamed profiles == the batch accumulator, bit for bit: both
        sum the same per-plane weighted products in the same order."""
        dns, stream = _serial_reference(4)
        batch = ChannelDNS(CFG)
        batch.initialize()
        batch.run(4, sample_every=1)
        res = stream.result()
        for name in ("uu", "vv", "ww", "uv"):
            np.testing.assert_array_equal(res[name], batch.statistics.profile(name))
        # U differs only by the summation route (values-of-sum vs
        # sum-of-values); both are exact to one ulp
        np.testing.assert_allclose(
            res["U"], batch.statistics.profile("U"), rtol=0, atol=1e-14
        )

    def test_spectra_match_batch_functions(self):
        """A single streamed sample reproduces energy_spectrum_x/z at
        every plane (round-off only: the batch path slices the y plane
        before summing, the streamed path after)."""
        dns, stream = _serial_reference(1)
        res = stream.result()
        ops = dns.stepper.ops
        for field, comp in ((dns.state.u, "u"), (dns.state.v, "v"), (dns.state.w, "w")):
            for yi in (0, CFG.ny // 2, CFG.ny - 1):
                kx, ex = energy_spectrum_x(dns.grid, ops, field, yi)
                kz, ez = energy_spectrum_z(dns.grid, ops, field, yi)
                np.testing.assert_array_equal(kx, res["kx"])
                np.testing.assert_array_equal(kz, res["kz"])
                np.testing.assert_allclose(
                    res[f"spec_x_{comp}"][:, yi], ex, rtol=1e-12, atol=1e-300
                )
                np.testing.assert_allclose(
                    res[f"spec_z_{comp}"][:, yi], ez, rtol=1e-12, atol=1e-300
                )

    def test_sampling_cadence(self):
        dns = ChannelDNS(CFG)
        dns.initialize()
        stream = dns.attach_streaming(every=2)
        dns.run(5)
        assert stream.counters.samples == 2  # steps 2 and 4
        assert stream.total_samples == 2

    def test_stats_timer_section_accumulates(self):
        dns, stream = _serial_reference(3)
        timers = dns.stepper.timers
        assert timers.calls.get(timers.STATS) == 3
        assert timers.elapsed[timers.STATS] > 0.0
        assert stream.counters.sample_seconds > 0.0

    def test_result_without_samples_raises(self):
        dns = ChannelDNS(CFG)
        dns.initialize()
        stream = dns.attach_streaming()
        with pytest.raises(RuntimeError, match="no samples"):
            stream.result()


class TestSerialSidecar:
    def test_kill_restart_loses_no_samples(self, tmp_path):
        """Serial mid-run 'kill': checkpoint at step 3, rebuild from disk,
        resume to step 6 — streamed stats == an uninterrupted streamed run."""
        _, ref_stream = _serial_reference(6)
        ref = ref_stream.result()

        rot = CheckpointRotation(tmp_path, keep=3)
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.attach_streaming(every=1)
        dns.run(3)
        rot.save(dns)  # writes the stats sidecar alongside
        del dns  # the "kill"

        restored = rot.load_latest(CFG)
        stream = restored.attach_streaming(every=1)
        assert stream.restore_from(tmp_path, restored.step_count)
        assert stream.total_samples == 3
        assert stream.counters.restores == 1
        restored.run(3)
        res = stream.result()
        assert res["nsamples"] == 6
        # restored-base + resumed-partial regroups the sum, so the match
        # is to the documented reduction tolerance, not bit-exact
        _assert_matches(res, ref, REDUCTION_RTOL)
        for name in ("spec_x_u", "spec_z_w"):
            np.testing.assert_allclose(
                res[name], ref[name], rtol=REDUCTION_RTOL, atol=1e-300, err_msg=name
            )

    def test_missing_sidecar_restores_empty(self, tmp_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        stream = dns.attach_streaming()
        assert not stream.restore_from(tmp_path, 5)
        assert stream.total_samples == 0

    def test_sidecar_grid_mismatch_rejected(self, tmp_path):
        dns, stream = _serial_reference(1)
        stream.save_to(tmp_path, 1)
        other = ChannelDNS(ChannelConfig(nx=16, ny=17, nz=16, dt=2e-4))
        other.initialize()
        with pytest.raises(ValueError, match="grid mismatch"):
            other.attach_streaming().restore_from(tmp_path, 1)

    def test_sidecars_rotate_with_snapshots(self, tmp_path):
        rot = CheckpointRotation(tmp_path, keep=2)
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.attach_streaming(every=1)
        for _ in range(4):
            dns.run(1)
            rot.save(dns)
        assert len(list(tmp_path.glob("stats-*.npz"))) == 2
        latest = StreamingStatistics.latest_sidecar_step(tmp_path)
        assert latest == dns.step_count


class TestDistributedIdentity:
    def test_distributed_matches_serial_to_reduction_tolerance(self):
        _, ref_stream = _serial_reference(4)
        ref = ref_stream.result()

        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            stream = dns.attach_streaming(every=1)
            dns.run(4)
            return stream.result() if comm.rank == 0 else stream.result() and None

        results = run_spmd(4, prog)
        res = results[0]
        _assert_matches(res, ref, REDUCTION_RTOL)
        for name in ("spec_x_u", "spec_x_v", "spec_x_w", "spec_z_u", "spec_z_w"):
            np.testing.assert_allclose(
                res[name], ref[name], rtol=REDUCTION_RTOL, atol=1e-300, err_msg=name
            )
        assert res["nsamples"] == 4
        np.testing.assert_allclose(res["u_tau"], ref["u_tau"], rtol=REDUCTION_RTOL)

    def test_supervised_restart_preserves_samples(self, tmp_path):
        """A mid-run rank kill -> full restart: published statistics match
        the uninterrupted serial oracle with exactly n_steps samples."""
        _, ref_stream = _serial_reference(10)
        ref = ref_stream.result()
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        final, log = run_supervised_spmd(
            4, CFG, pa=2, pb=2, n_steps=10,
            checkpoint_dir=tmp_path / "ck", checkpoint_every=5,
            fault_plans=[plan],
            streaming_every=1, publish=tmp_path / "store",
        )
        assert [e.kind for e in log] == ["restart"]
        manifest, arrays = StatsStore(tmp_path / "store").load(CFG.re_tau)
        assert manifest["nsamples"] == 10
        _assert_matches(arrays, ref, REDUCTION_RTOL)

    def test_elastic_shrink_preserves_samples(self, tmp_path):
        """The 4 -> 2x1-survivor shrink continues accumulating: published
        statistics still match the serial oracle, no samples dropped."""
        _, ref_stream = _serial_reference(10)
        ref = ref_stream.result()
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        final, log = run_supervised_spmd(
            4, CFG, pa=2, pb=2, n_steps=10,
            checkpoint_dir=tmp_path / "ck", checkpoint_every=5,
            fault_plans=[plan], elastic=True,
            streaming_every=1, publish=tmp_path / "store",
        )
        assert "shrink" in [e.kind for e in log]
        manifest, arrays = StatsStore(tmp_path / "store").load(CFG.re_tau)
        assert manifest["nsamples"] == 10
        _assert_matches(arrays, ref, REDUCTION_RTOL)
        for name in ("spec_x_u", "spec_z_u"):
            np.testing.assert_allclose(
                arrays[name], ref[name], rtol=REDUCTION_RTOL, atol=1e-300, err_msg=name
            )
