"""Wisdom store: persistence, robustness, and the warm-start contract."""

import json
import threading

import numpy as np
import pytest

from repro.fft.plans import FFTPlan, PlanFlags, Planner
from repro.linalg.custom import FoldedLU
from repro.linalg.engine import measure_block
from repro.linalg.structure import BandedSystemSpec, FoldedBanded
from repro.mpi.simmpi import run_spmd
from repro.pencil.decomp import block_range
from repro.pencil.transpose import GlobalTranspose, TransposeMethod
from repro.tuning import (
    ENV_WISDOM,
    MEASURE_STATS,
    WISDOM_SCHEMA_VERSION,
    WisdomStore,
    default_store,
    machine_fingerprint,
    make_key,
    wisdom_provenance,
)


@pytest.fixture
def store(tmp_path):
    return WisdomStore(tmp_path / "wisdom.json")


def _folded_lu(n=64, nbatch=4):
    rng = np.random.default_rng(0)
    spec = BandedSystemSpec(n=n, kl=3, ku=3, corner=3)
    data = rng.standard_normal((nbatch, n, spec.window))
    data[:, np.arange(n), spec.mdiag] += 14.0
    return FoldedLU(FoldedBanded(spec, data))


class TestStoreBasics:
    def test_record_then_lookup(self, store):
        store.record("fft", ["k", [4, 4], 0], {"strategy": "direct"}, {"direct": 1e-5})
        assert store.lookup("fft", ["k", [4, 4], 0]) == {"strategy": "direct"}
        assert store.counters.hits == 1 and store.counters.writes == 1

    def test_persists_across_instances(self, store, tmp_path):
        store.record("d", ["a"], {"v": 1})
        again = WisdomStore(tmp_path / "wisdom.json")
        assert again.lookup("d", ["a"]) == {"v": 1}

    def test_miss_is_counted(self, store):
        assert store.lookup("d", ["nope"]) is None
        assert store.counters.misses == 1

    def test_domains_do_not_collide(self, store):
        store.record("a", ["k"], {"v": 1})
        store.record("b", ["k"], {"v": 2})
        assert store.lookup("a", ["k"]) == {"v": 1}
        assert store.lookup("b", ["k"]) == {"v": 2}

    def test_make_key_normalizes(self):
        assert make_key((4, 4), np.dtype("float64")) == make_key([4, 4], "float64")

    def test_provenance(self, store):
        store.record("d", ["a"], {"v": 1})
        p = store.provenance()
        assert p["enabled"] and p["entries"] == 1
        assert p["fingerprint"] == machine_fingerprint()
        assert p["schema"] == WISDOM_SCHEMA_VERSION


class TestRobustness:
    """Corrupt, stale and foreign wisdom never raises — it re-measures."""

    def test_fingerprint_mismatch_misses(self, store, tmp_path):
        store.record("d", ["a"], {"v": 1})
        foreign = WisdomStore(tmp_path / "wisdom.json", fingerprint="deadbeef00000000")
        assert foreign.lookup("d", ["a"]) is None
        assert foreign.counters.stale == 1

    def test_schema_bump_drops_entries(self, store, tmp_path):
        store.record("d", ["a"], {"v": 1})
        doc = json.loads((tmp_path / "wisdom.json").read_text())
        doc["schema"] = WISDOM_SCHEMA_VERSION + 1
        (tmp_path / "wisdom.json").write_text(json.dumps(doc))
        again = WisdomStore(tmp_path / "wisdom.json")
        assert again.lookup("d", ["a"]) is None
        assert again.counters.stale == 1

    @pytest.mark.parametrize("garbage", ["", "{", "[1,2,3]", '{"schema": 1}'])
    def test_corrupt_file_is_ignored(self, tmp_path, garbage):
        path = tmp_path / "wisdom.json"
        path.write_text(garbage)
        s = WisdomStore(path)
        assert s.lookup("d", ["a"]) is None
        assert s.counters.corrupt == 1

    def test_truncated_file_recovers_on_record(self, tmp_path):
        path = tmp_path / "wisdom.json"
        s = WisdomStore(path)
        s.record("d", ["a"], {"v": 1})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        again = WisdomStore(path)
        assert again.lookup("d", ["a"]) is None  # corrupt, not raised
        again.record("d", ["b"], {"v": 2})  # and the file heals
        assert WisdomStore(path).lookup("d", ["b"]) == {"v": 2}

    def test_malformed_entry_skipped_others_kept(self, store, tmp_path):
        store.record("d", ["good"], {"v": 1})
        path = tmp_path / "wisdom.json"
        doc = json.loads(path.read_text())
        doc["entries"]["d::bad"] = "not-a-dict"
        path.write_text(json.dumps(doc))
        again = WisdomStore(path)
        assert again.lookup("d", ["good"]) == {"v": 1}
        assert again.counters.corrupt == 1

    def test_concurrent_writers_do_not_clobber(self, tmp_path):
        path = tmp_path / "wisdom.json"

        def prog(comm):
            s = WisdomStore(path)
            s.record("d", [f"rank{comm.rank}"], {"v": comm.rank})
            comm.barrier()
            return True

        assert all(run_spmd(4, prog))
        merged = WisdomStore(path)
        for r in range(4):
            assert merged.lookup("d", [f"rank{r}"]) == {"v": r}

    def test_threaded_writers_all_land(self, tmp_path):
        path = tmp_path / "wisdom.json"
        stores = [WisdomStore(path) for _ in range(8)]
        threads = [
            threading.Thread(target=s.record, args=("d", [f"t{i}"], {"v": i}))
            for i, s in enumerate(stores)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = WisdomStore(path)
        for i in range(8):
            assert merged.lookup("d", [f"t{i}"]) == {"v": i}


class TestReadonlyAndEnv:
    def test_readonly_never_writes(self, tmp_path):
        path = tmp_path / "wisdom.json"
        WisdomStore(path).record("d", ["a"], {"v": 1})
        before = path.read_text()
        ro = WisdomStore(path, readonly=True)
        assert ro.lookup("d", ["a"]) == {"v": 1}
        ro.record("d", ["b"], {"v": 2})
        assert path.read_text() == before
        assert ro.counters.readonly_drops == 1
        # ... but the in-memory view still warms within the process
        assert ro.lookup("d", ["b"]) == {"v": 2}

    @pytest.mark.parametrize("env", ["", "off", "0"])
    def test_env_off(self, monkeypatch, env):
        monkeypatch.setenv(ENV_WISDOM, env)
        assert default_store() is None
        assert wisdom_provenance() == {"enabled": False}

    def test_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_WISDOM, str(tmp_path / "w.json"))
        s = default_store()
        assert s is not None and not s.readonly
        assert default_store() is s  # cached per env value

    def test_env_readonly(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_WISDOM, f"readonly:{tmp_path / 'w.json'}")
        s = default_store()
        assert s is not None and s.readonly

    def test_env_provenance_lands_in_manifest(self, monkeypatch, tmp_path):
        from repro.telemetry.manifest import build_manifest

        monkeypatch.setenv(ENV_WISDOM, str(tmp_path / "w.json"))
        m = build_manifest()
        assert m["wisdom"]["enabled"] is True
        assert m["wisdom"]["path"] == str(tmp_path / "w.json")
        monkeypatch.setenv(ENV_WISDOM, "off")
        assert build_manifest()["wisdom"] == {"enabled": False}


class TestFFTPlanWisdom:
    """MEASURE plans: cold measures and records, warm loads bit-identical."""

    def test_cold_then_warm(self, store):
        MEASURE_STATS.reset()
        cold = FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.MEASURE, wisdom=store)
        assert MEASURE_STATS.fft_candidates_timed > 0
        assert not cold.from_wisdom

        MEASURE_STATS.reset()
        warm = FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.MEASURE, wisdom=store)
        assert MEASURE_STATS.fft_candidates_timed == 0
        assert warm.from_wisdom
        assert warm.strategy == cold.strategy
        assert warm.measured == {k: pytest.approx(v) for k, v in cold.measured.items()}

    def test_warm_plan_executes_identically(self, store, rng):
        a = rng.standard_normal((16, 16))
        cold = FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.MEASURE, wisdom=store)
        warm = FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.MEASURE, wisdom=store)
        np.testing.assert_array_equal(cold.execute(a), warm.execute(a))

    def test_planner_field_threads_wisdom(self, store):
        MEASURE_STATS.reset()
        Planner(flags=PlanFlags.MEASURE, wisdom=store).plan("fft", (16, 16), 0)
        assert MEASURE_STATS.fft_candidates_timed > 0
        MEASURE_STATS.reset()
        p = Planner(flags=PlanFlags.MEASURE, wisdom=store).plan("fft", (16, 16), 0)
        assert MEASURE_STATS.fft_candidates_timed == 0
        assert p.from_wisdom

    def test_estimate_plans_never_touch_the_store(self, store):
        FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.ESTIMATE, wisdom=store)
        assert len(store) == 0

    def test_foreign_wisdom_remeasures(self, store, tmp_path):
        FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.MEASURE, wisdom=store)
        foreign = WisdomStore(tmp_path / "wisdom.json", fingerprint="feedface00000000")
        MEASURE_STATS.reset()
        plan = FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.MEASURE, wisdom=foreign)
        assert MEASURE_STATS.fft_candidates_timed > 0
        assert not plan.from_wisdom


class TestEngineBlockWisdom:
    def test_cold_then_warm(self, store):
        MEASURE_STATS.reset()
        cold = measure_block(_folded_lu(), wisdom=store)
        assert MEASURE_STATS.engine_blocks_timed > 0

        MEASURE_STATS.reset()
        warm = measure_block(_folded_lu(), wisdom=store)
        assert MEASURE_STATS.engine_blocks_timed == 0
        assert warm == cold

    def test_engine_measure_resolves_once(self, store):
        lu = _folded_lu()
        eng = lu.engine(block="measure", wisdom=store)
        assert eng.block == measure_block(_folded_lu(), wisdom=store)

    def test_single_candidate_skips_measurement(self, store):
        MEASURE_STATS.reset()
        block = measure_block(_folded_lu(n=16), candidates=(16, 32, 64), wisdom=store)
        assert block == 16  # every candidate clamps to n
        assert MEASURE_STATS.engine_blocks_timed == 0


class TestTransposeWisdom:
    def test_cold_then_warm_identical_choice(self, tmp_path):
        path = tmp_path / "wisdom.json"

        def prog(comm):
            s = WisdomStore(path)
            lo, hi = block_range(8, comm.size, comm.rank)
            t = GlobalTranspose(comm, 0, 2)
            choice = t.plan(np.zeros((8, 2, hi - lo)), wisdom=s)
            return choice.value, len(t.measured)

        MEASURE_STATS.reset()
        cold = run_spmd(4, prog)
        assert MEASURE_STATS.transpose_methods_timed > 0
        assert all(m == 3 for _, m in cold)

        MEASURE_STATS.reset()
        warm = run_spmd(4, prog)
        assert MEASURE_STATS.transpose_methods_timed == 0
        assert [c for c, _ in warm] == [c for c, _ in cold]
        assert all(m == 0 for _, m in warm)  # loaded, not measured

    def test_ranks_agree_on_warm_choice(self, tmp_path):
        path = tmp_path / "wisdom.json"

        def prog(comm):
            s = WisdomStore(path)
            lo, hi = block_range(8, comm.size, comm.rank)
            t = GlobalTranspose(comm, 0, 2)
            choice = t.plan(np.zeros((8, 2, hi - lo)), wisdom=s)
            choices = comm.allgather(choice)
            assert len(set(choices)) == 1
            return choice in list(TransposeMethod)

        assert all(run_spmd(4, prog))
        assert all(run_spmd(4, prog))
