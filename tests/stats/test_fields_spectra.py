"""Field extraction and spectra tests."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.operators import WallNormalOps
from repro.stats.fields import (
    ascii_contour,
    multiscale_zoom,
    spanwise_vorticity_plane,
    streamwise_velocity_plane,
)
from repro.stats.spectra import energy_spectrum_x, energy_spectrum_z, spectral_decay


@pytest.fixture(scope="module")
def dns():
    d = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=12))
    d.initialize()
    d.run(2)
    return d


class TestFieldExtraction:
    def test_velocity_plane_shape(self, dns):
        plane = streamwise_velocity_plane(dns)
        assert plane.shape == (dns.grid.nxq, dns.grid.ny)

    def test_velocity_plane_no_slip(self, dns):
        plane = streamwise_velocity_plane(dns)
        assert np.abs(plane[:, 0]).max() < 1e-8
        assert np.abs(plane[:, -1]).max() < 1e-8

    def test_vorticity_plane_real_and_shaped(self, dns):
        plane = spanwise_vorticity_plane(dns, yplus=15.0)
        assert plane.shape == (dns.grid.nxq, dns.grid.nzq)
        assert np.isrealobj(plane) or np.abs(plane.imag).max() < 1e-10

    def test_vorticity_dominated_by_mean_shear(self, dns):
        """Near the wall omega_z ~ -du/dy < 0 on the lower wall."""
        plane = spanwise_vorticity_plane(dns, yplus=5.0)
        assert plane.mean() < 0.0

    def test_requires_initialized_dns(self):
        d = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16))
        with pytest.raises(RuntimeError):
            spanwise_vorticity_plane(d)


class TestAsciiContour:
    def test_dimensions(self, rng):
        art = ascii_contour(rng.standard_normal((40, 30)), width=50, height=12)
        lines = art.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 50 for line in lines)

    def test_constant_field(self):
        art = ascii_contour(np.ones((10, 10)), width=8, height=4)
        assert set(art.replace("\n", "")) == {" "}

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_contour(np.zeros(5))

    def test_zoom(self, rng):
        full, zoom = multiscale_zoom(rng.standard_normal((32, 16)), factor=4)
        assert zoom.shape == (8, 4)
        np.testing.assert_array_equal(zoom, full[:8, :4])


class TestSpectra:
    def test_parseval_consistency_x(self, dns):
        """Sum of E(kx) equals the plane-averaged energy at that height."""
        g = dns.grid
        ops = WallNormalOps(g)
        iy = g.ny // 2
        kx, e = energy_spectrum_x(g, ops, dns.state.u, iy)
        from repro.core.transforms import to_quadrature_grid

        phys = to_quadrature_grid(ops.values(dns.state.u), g)
        assert e.sum() == pytest.approx((phys[:, :, iy] ** 2).mean(), rel=1e-8)

    def test_parseval_consistency_z(self, dns):
        g = dns.grid
        ops = WallNormalOps(g)
        iy = g.ny // 2
        kz, e = energy_spectrum_z(g, ops, dns.state.u, iy)
        from repro.core.transforms import to_quadrature_grid

        phys = to_quadrature_grid(ops.values(dns.state.u), g)
        assert e.sum() == pytest.approx((phys[:, :, iy] ** 2).mean(), rel=1e-8)

    def test_spectra_nonnegative(self, dns):
        g = dns.grid
        ops = WallNormalOps(g)
        for fn in (energy_spectrum_x, energy_spectrum_z):
            _, e = fn(g, ops, dns.state.v, g.ny // 3)
            assert np.all(e >= 0)

    def test_spectral_decay_metric(self):
        assert spectral_decay(np.array([1.0, 0.1, 1e-6])) == pytest.approx(6.0)
