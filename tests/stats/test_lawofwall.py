"""Law-of-the-wall reference curve tests."""

import numpy as np
import pytest

from repro.stats.lawofwall import (
    log_law,
    reichardt,
    total_stress_residual,
    variance_reference,
    viscous_sublayer,
)


class TestMeanProfiles:
    def test_sublayer_limit(self):
        """Reichardt -> y+ as y+ -> 0."""
        yp = np.array([0.01, 0.1, 0.5])
        np.testing.assert_allclose(reichardt(yp), viscous_sublayer(yp), rtol=0.08)

    def test_log_limit(self):
        """Reichardt tracks the log law in the overlap region."""
        yp = np.array([200.0, 500.0, 1000.0])
        np.testing.assert_allclose(reichardt(yp), log_law(yp), rtol=0.03)

    def test_log_law_slope(self):
        y1, y2 = 100.0, 1000.0
        slope = (log_law(y2) - log_law(y1)) / np.log(y2 / y1)
        assert slope == pytest.approx(1 / 0.41)

    def test_monotone_increasing(self):
        yp = np.logspace(-1, 3.5, 200)
        assert np.all(np.diff(reichardt(yp)) > 0)


class TestVarianceReferences:
    @pytest.mark.parametrize("comp,peak_loc", [("uu", 15), ("ww", 40), ("vv", 70)])
    def test_peak_positions(self, comp, peak_loc):
        yp = np.linspace(0.5, 1000, 4000)
        prof = variance_reference(yp, 5200.0, comp)
        assert yp[np.argmax(prof)] == pytest.approx(peak_loc, rel=0.35)

    def test_uu_is_largest(self):
        """Fig. 6: <uu> dominates <ww> dominates <vv> near the wall."""
        yp = np.linspace(1, 100, 200)
        uu = variance_reference(yp, 5200.0, "uu").max()
        ww = variance_reference(yp, 5200.0, "ww").max()
        vv = variance_reference(yp, 5200.0, "vv").max()
        assert uu > ww > vv

    def test_vanish_at_wall(self):
        for comp in ("uu", "vv", "ww", "uv"):
            val = variance_reference(np.array([1e-3]), 5200.0, comp)[0]
            assert val < 0.05

    def test_vanish_at_centreline(self):
        re = 5200.0
        for comp in ("uu", "vv", "ww"):
            prof = variance_reference(np.array([re]), re, comp)[0]
            peak = variance_reference(np.linspace(1, re, 2000), re, comp).max()
            assert prof < 0.2 * peak

    def test_uu_peak_grows_with_re(self):
        """The known slow Re_tau growth of the near-wall peak."""
        yp = np.linspace(1, 60, 300)
        lo = variance_reference(yp, 180.0, "uu").max()
        hi = variance_reference(yp, 5200.0, "uu").max()
        assert hi > lo

    def test_uv_approaches_total_stress(self):
        """-<uv>+ -> 1 - y/h away from the wall (Fig. 6 shear stress)."""
        re = 5200.0
        yp = np.array([500.0])
        uv = variance_reference(yp, re, "uv")[0]
        assert uv == pytest.approx(1 - 500 / re, abs=0.05)

    def test_unknown_component(self):
        with pytest.raises(ValueError):
            variance_reference(np.array([1.0]), 180.0, "qq")


class TestStressBalance:
    def test_residual_zero_for_consistent_inputs(self):
        re = 1000.0
        yp = np.linspace(1, re, 500)
        h = 1e-3
        dudy = (reichardt(yp + h) - reichardt(yp - h)) / (2 * h)
        uv = variance_reference(yp, re, "uv")
        res = total_stress_residual(yp, -uv, dudy, re)
        assert np.abs(res).max() < 0.02
