"""CommA/CommB topology pattern tests (paper Fig. 4, Table 5 locality)."""

import pytest

from repro.mpi.topology import CommPattern, ascii_pattern, comm_grid


class TestCommPattern:
    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            comm_grid(128, 8, 15)

    def test_coords(self):
        p = comm_grid(8, 2, 4)
        assert p.coords(0) == (0, 0)
        assert p.coords(5) == (1, 1)

    def test_members(self):
        p = comm_grid(8, 2, 4)
        assert p.comm_b_members(5) == [4, 5, 6, 7]
        assert p.comm_a_members(5) == [1, 5]

    def test_every_rank_in_exactly_one_of_each(self):
        p = comm_grid(24, 4, 6)
        for r in range(24):
            assert r in p.comm_a_members(r)
            assert r in p.comm_b_members(r)
            assert len(p.comm_a_members(r)) == 4
            assert len(p.comm_b_members(r)) == 6

    def test_edge_counts(self):
        """|CommA edges| = pb * C(pa,2), |CommB edges| = pa * C(pb,2)."""
        p = comm_grid(128, 8, 16)
        ea, eb = p.edges()
        assert len(ea) == 16 * (8 * 7 // 2)
        assert len(eb) == 8 * (16 * 15 // 2)


class TestNodeLocality:
    def test_paper_fig4_grid(self):
        """128 tasks as 8x16 with 16 cores/node: CommB entirely on-node."""
        p = comm_grid(128, 8, 16)
        assert p.comm_b_is_node_local(16)
        assert p.off_node_fraction("A", 16) == 1.0

    def test_wide_comm_b_spills_off_node(self):
        p = comm_grid(128, 4, 32)
        assert not p.comm_b_is_node_local(16)
        assert p.off_node_fraction("B", 16) > 0.0

    def test_table5_ordering(self):
        """Table 5: smaller CommB = more node-local B traffic on Mira (16/node)."""
        fractions = [
            comm_grid(8192, pa, pb).off_node_fraction("B", 16)
            for pa, pb in [(512, 16), (256, 32), (128, 64), (64, 128)]
        ]
        assert fractions[0] == 0.0
        assert fractions == sorted(fractions)

    def test_node_of(self):
        p = comm_grid(64, 8, 8)
        assert p.node_of(0, 16) == 0
        assert p.node_of(17, 16) == 1


class TestAscii:
    def test_ascii_pattern_shape(self):
        p = comm_grid(16, 4, 4)
        art = ascii_pattern(p)
        lines = art.splitlines()
        assert len(lines) == 16
        assert set("".join(lines)) <= {".", "A", "B"}

    def test_ascii_truncates(self):
        p = comm_grid(128, 8, 16)
        assert len(ascii_pattern(p, max_ranks=10).splitlines()) == 10
