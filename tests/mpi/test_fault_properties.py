"""Property-style sweep of randomized FaultPlan schedules.

The contract, over ~25 seeds of random kill/corrupt/drop/delay schedules:
every injected failure surfaces as a *typed* error on every rank that
observes it, within the join timeout — no hangs, no silent result
corruption escaping the integrity layer, and no orphan worker threads
left behind by the abort path.
"""

import threading
import time

import numpy as np
import pytest

from repro.chaos import random_fault_plan
from repro.mpi.simmpi import (
    FaultEvent,
    FaultPlan,
    RankFailure,
    ShrinkRequired,
    SimMPIError,
    run_spmd,
    waitall,
)

NRANKS = 4
#: wall ceiling well below the 60 s join timeout passed to run_spmd
BOUNDED = 20.0
#: the only exception types a fault is allowed to surface as
TYPED = (SimMPIError, RankFailure, ShrinkRequired)


def _collective_storm(comm):
    """A deterministic program touching every collective the plans target."""
    for i in range(30):
        comm.barrier()
        comm.bcast(np.arange(8) + i if comm.rank == 0 else None, root=0)
        comm.allreduce(comm.rank + i)
        comm.alltoall([np.full(4, comm.rank * 100 + j) for j in range(comm.size)])
    return comm.rank


def _settled_thread_count(baseline, deadline=5.0):
    """Wait for worker threads to drain back to the baseline count."""
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < deadline:
        if threading.active_count() <= baseline:
            break
        time.sleep(0.01)
    return threading.active_count()


@pytest.mark.parametrize("seed", range(25))
def test_random_schedule_types_cleanly_on_all_ranks(seed):
    plan = random_fault_plan(seed, NRANKS, max_events=3, max_call=120)
    outcomes = [None] * NRANKS
    threads_before = threading.active_count()

    def prog(comm):
        try:
            result = _collective_storm(comm)
        except BaseException as exc:
            outcomes[comm.rank] = exc
            raise
        outcomes[comm.rank] = "ok"
        return result

    # half the sweep exercises the elastic agreement path, half the
    # classic abort; integrity is always on so corruption cannot pass
    elastic = seed % 2 == 0
    t0 = time.perf_counter()
    try:
        results = run_spmd(
            NRANKS, prog, timeout=60.0, fault_plan=plan,
            elastic=elastic, integrity=True,
        )
    except TYPED:
        pass  # a typed failure is a correct outcome
    else:
        assert results == list(range(NRANKS))  # clean completion, right data
    elapsed = time.perf_counter() - t0

    assert elapsed < BOUNDED, f"seed {seed} took {elapsed:.1f}s (hang?)"
    for rank, out in enumerate(outcomes):
        assert out == "ok" or isinstance(out, TYPED), (
            f"seed {seed}: rank {rank} saw untyped {type(out).__name__}: {out}"
        )
    # the abort path must leave no orphan worker threads behind
    after = _settled_thread_count(threads_before)
    assert after <= threads_before, (
        f"seed {seed}: {after - threads_before} orphan thread(s) remain"
    )


def _nonblocking_storm(comm):
    """A deterministic program living on the nonblocking path: overlapped
    ialltoall rounds with the ack credit protocol, plus an isend/irecv ring."""
    for i in range(20):
        req = comm.ialltoall(
            [np.full(4, comm.rank * 100 + j + i) for j in range(comm.size)]
        )
        got = req.wait()
        assert got[comm.rank][0] == comm.rank * 100 + comm.rank + i
        req.wait_acks()
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        rreq = comm.irecv(source=left, tag=7)
        sreq = comm.isend(np.array([comm.rank, i]), dest=right, tag=7)
        waitall([rreq, sreq])
        sreq.wait_acks()
    return comm.rank


#: fault schedules for the nonblocking sweep target the nonblocking ops
#: (plus the wildcard, which fires at whatever the victim reaches next)
NONBLOCKING_OPS = ("ialltoall", "isend", None)


@pytest.mark.parametrize("seed", range(12))
def test_random_schedule_nonblocking_ops_type_cleanly(seed):
    """Satellite contract: faults on nonblocking ops fire at wait/test
    time with the same typed semantics as the blocking collectives."""
    plan = random_fault_plan(
        seed, NRANKS, max_events=3, max_call=100, ops=NONBLOCKING_OPS
    )
    outcomes = [None] * NRANKS
    threads_before = threading.active_count()

    def prog(comm):
        try:
            result = _nonblocking_storm(comm)
        except BaseException as exc:
            outcomes[comm.rank] = exc
            raise
        outcomes[comm.rank] = "ok"
        return result

    elastic = seed % 2 == 0
    t0 = time.perf_counter()
    try:
        results = run_spmd(
            NRANKS, prog, timeout=60.0, fault_plan=plan,
            elastic=elastic, integrity=True,
        )
    except TYPED:
        pass
    else:
        assert results == list(range(NRANKS))
    elapsed = time.perf_counter() - t0

    assert elapsed < BOUNDED, f"seed {seed} took {elapsed:.1f}s (hang?)"
    for rank, out in enumerate(outcomes):
        assert out == "ok" or isinstance(out, TYPED), (
            f"seed {seed}: rank {rank} saw untyped {type(out).__name__}: {out}"
        )
    after = _settled_thread_count(threads_before)
    assert after <= threads_before, (
        f"seed {seed}: {after - threads_before} orphan thread(s) remain"
    )


class TestDeferredFaultSemantics:
    """Each fault action, pinned to a deterministic nonblocking call site."""

    def test_kill_defers_from_post_to_wait(self):
        plan = FaultPlan([FaultEvent("kill", rank=1, op="ialltoall", call=0)])
        posted = [False] * NRANKS

        def prog(comm):
            req = comm.ialltoall([np.ones(2)] * comm.size)
            posted[comm.rank] = True  # the post itself must not raise
            req.wait()
            return True

        with pytest.raises(ShrinkRequired) as exc_info:
            run_spmd(NRANKS, prog, fault_plan=plan, elastic=True, timeout=30.0)
        assert all(posted)
        assert exc_info.value.survivors == (0, 2, 3)
        assert exc_info.value.dead == (1,)

    def test_kill_surfaces_at_test_too(self):
        plan = FaultPlan([FaultEvent("kill", rank=0, op="ialltoall", call=0)])
        saw = [None] * 2

        def prog(comm):
            req = comm.ialltoall([np.ones(2)] * comm.size)
            try:
                req.test()
            except RankFailure as exc:
                saw[comm.rank] = exc
                raise
            req.wait()
            return True

        with pytest.raises((RankFailure, SimMPIError)):
            run_spmd(2, prog, fault_plan=plan, timeout=30.0)
        assert isinstance(saw[0], RankFailure)

    def test_corrupt_detected_at_wait_with_integrity(self):
        plan = FaultPlan([FaultEvent("corrupt", rank=1, op="ialltoall", call=0)])

        def prog(comm):
            comm.ialltoall([np.arange(8.0)] * comm.size).wait()
            return True

        with pytest.raises(SimMPIError, match="corrupt payload from rank 1"):
            run_spmd(3, prog, fault_plan=plan, integrity=True, timeout=30.0)
        assert plan.triggered[0]["action"] == "corrupt"

    def test_drop_detected_at_wait(self):
        plan = FaultPlan([FaultEvent("drop", rank=2, op="ialltoallv", call=0)])

        def prog(comm):
            comm.ialltoallv([np.arange(4.0)] * comm.size).wait()
            return True

        with pytest.raises(SimMPIError, match="rank 2 dropped"):
            run_spmd(3, prog, fault_plan=plan, timeout=30.0)

    def test_delay_stalls_completion_not_post(self):
        plan = FaultPlan([FaultEvent("delay", rank=0, op="ialltoall", call=0, delay=0.3)])

        def prog(comm):
            t0 = time.perf_counter()
            req = comm.ialltoall([np.ones(2)] * comm.size)
            t_post = time.perf_counter() - t0
            req.wait()
            t_wait = time.perf_counter() - t0
            return t_post, t_wait

        t_post, t_wait = run_spmd(2, prog, fault_plan=plan, timeout=30.0)[0]
        assert t_post < 0.1  # the post returned immediately
        assert t_wait >= 0.3  # the injected latency surfaced at wait

    def test_isend_kill_defers_to_wait(self):
        plan = FaultPlan([FaultEvent("kill", rank=0, op="isend", call=0)])

        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.ones(2), dest=1)
                req.wait()
            else:
                comm.irecv(source=0).wait()
            return True

        with pytest.raises((RankFailure, SimMPIError)):
            run_spmd(2, prog, fault_plan=plan, timeout=30.0)


def test_sweep_covers_every_action():
    """Sanity on the generator itself: across the sweep's seed range all
    four fault actions actually occur, so the property above is not
    vacuously passing on delay-only schedules."""
    actions = {
        e.action
        for seed in range(25)
        for e in random_fault_plan(seed, NRANKS, max_events=3, max_call=120).events
    }
    assert actions == {"kill", "corrupt", "drop", "delay"}
