"""Property-style sweep of randomized FaultPlan schedules.

The contract, over ~25 seeds of random kill/corrupt/drop/delay schedules:
every injected failure surfaces as a *typed* error on every rank that
observes it, within the join timeout — no hangs, no silent result
corruption escaping the integrity layer, and no orphan worker threads
left behind by the abort path.
"""

import threading
import time

import numpy as np
import pytest

from repro.chaos import random_fault_plan
from repro.mpi.simmpi import (
    RankFailure,
    ShrinkRequired,
    SimMPIError,
    run_spmd,
)

NRANKS = 4
#: wall ceiling well below the 60 s join timeout passed to run_spmd
BOUNDED = 20.0
#: the only exception types a fault is allowed to surface as
TYPED = (SimMPIError, RankFailure, ShrinkRequired)


def _collective_storm(comm):
    """A deterministic program touching every collective the plans target."""
    for i in range(30):
        comm.barrier()
        comm.bcast(np.arange(8) + i if comm.rank == 0 else None, root=0)
        comm.allreduce(comm.rank + i)
        comm.alltoall([np.full(4, comm.rank * 100 + j) for j in range(comm.size)])
    return comm.rank


def _settled_thread_count(baseline, deadline=5.0):
    """Wait for worker threads to drain back to the baseline count."""
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < deadline:
        if threading.active_count() <= baseline:
            break
        time.sleep(0.01)
    return threading.active_count()


@pytest.mark.parametrize("seed", range(25))
def test_random_schedule_types_cleanly_on_all_ranks(seed):
    plan = random_fault_plan(seed, NRANKS, max_events=3, max_call=120)
    outcomes = [None] * NRANKS
    threads_before = threading.active_count()

    def prog(comm):
        try:
            result = _collective_storm(comm)
        except BaseException as exc:
            outcomes[comm.rank] = exc
            raise
        outcomes[comm.rank] = "ok"
        return result

    # half the sweep exercises the elastic agreement path, half the
    # classic abort; integrity is always on so corruption cannot pass
    elastic = seed % 2 == 0
    t0 = time.perf_counter()
    try:
        results = run_spmd(
            NRANKS, prog, timeout=60.0, fault_plan=plan,
            elastic=elastic, integrity=True,
        )
    except TYPED:
        pass  # a typed failure is a correct outcome
    else:
        assert results == list(range(NRANKS))  # clean completion, right data
    elapsed = time.perf_counter() - t0

    assert elapsed < BOUNDED, f"seed {seed} took {elapsed:.1f}s (hang?)"
    for rank, out in enumerate(outcomes):
        assert out == "ok" or isinstance(out, TYPED), (
            f"seed {seed}: rank {rank} saw untyped {type(out).__name__}: {out}"
        )
    # the abort path must leave no orphan worker threads behind
    after = _settled_thread_count(threads_before)
    assert after <= threads_before, (
        f"seed {seed}: {after - threads_before} orphan thread(s) remain"
    )


def test_sweep_covers_every_action():
    """Sanity on the generator itself: across the sweep's seed range all
    four fault actions actually occur, so the property above is not
    vacuously passing on delay-only schedules."""
    actions = {
        e.action
        for seed in range(25)
        for e in random_fault_plan(seed, NRANKS, max_events=3, max_call=120).events
    }
    assert actions == {"kill", "corrupt", "drop", "delay"}
