"""SimMPI collective/point-to-point/topology semantics tests."""

import numpy as np
import pytest

from repro.mpi.simmpi import Communicator, SimMPIError, run_spmd, waitall


class TestCollectives:
    def test_alltoall_permutation(self):
        def prog(comm):
            chunks = [np.array([comm.rank, d]) for d in range(comm.size)]
            got = comm.alltoall(chunks)
            for src in range(comm.size):
                assert got[src][0] == src and got[src][1] == comm.rank
            return True

        assert all(run_spmd(6, prog))

    def test_alltoall_variable_sizes(self):
        """alltoallv semantics: chunk shapes may differ per destination."""

        def prog(comm):
            chunks = [np.full(d + 1, comm.rank) for d in range(comm.size)]
            got = comm.alltoall(chunks)
            for src in range(comm.size):
                assert got[src].shape == (comm.rank + 1,)
                assert np.all(got[src] == src)
            return True

        assert all(run_spmd(4, prog))

    def test_alltoall_wrong_chunk_count(self):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.alltoall([np.zeros(1)] * (comm.size + 1))
            comm.barrier()
            return True

        assert all(run_spmd(3, prog))

    def test_bcast(self):
        def prog(comm):
            return comm.bcast("payload" if comm.rank == 1 else None, root=1)

        assert run_spmd(4, prog) == ["payload"] * 4

    def test_allgather_ordering(self):
        def prog(comm):
            return comm.allgather(comm.rank * 2)

        for out in run_spmd(5, prog):
            assert out == [0, 2, 4, 6, 8]

    def test_allreduce_sum_and_custom_op(self):
        def prog(comm):
            return comm.allreduce(comm.rank), comm.allreduce(comm.rank, op=max)

        for s, m in run_spmd(5, prog):
            assert s == 10 and m == 4

    def test_reduce_root_only(self):
        def prog(comm):
            return comm.reduce(1, root=2)

        out = run_spmd(4, prog)
        assert out[2] == 4
        assert out[0] is None

    def test_repeated_collectives_no_crosstalk(self):
        """Board reuse across many rounds must never mix generations."""

        def prog(comm):
            for round_ in range(20):
                got = comm.alltoall([np.array([round_, comm.rank])] * comm.size)
                for g in got:
                    assert g[0] == round_
            return True

        assert all(run_spmd(4, prog))


class TestNonblocking:
    def test_ialltoall_matches_alltoall(self):
        def prog(comm):
            chunks = [np.array([comm.rank, d]) for d in range(comm.size)]
            req = comm.ialltoall(chunks)
            got = req.wait()
            ref = comm.alltoall(chunks)
            for a, b in zip(got, ref):
                np.testing.assert_array_equal(a, b)
            req.wait_acks()
            return True

        assert all(run_spmd(5, prog))

    def test_ialltoallv_variable_sizes(self):
        def prog(comm):
            chunks = [np.full(d + 1, comm.rank) for d in range(comm.size)]
            got = comm.ialltoallv(chunks).wait()
            for src in range(comm.size):
                assert got[src].shape == (comm.rank + 1,)
                assert np.all(got[src] == src)
            return True

        assert all(run_spmd(4, prog))

    def test_ialltoall_out_views(self):
        """wait(out=...) assembles into caller buffers without allocating."""

        def prog(comm):
            chunks = [np.array([float(comm.rank * 10 + d)]) for d in range(comm.size)]
            out = [np.zeros(1) for _ in range(comm.size)]
            got = comm.ialltoall(chunks).wait(out=out)
            assert all(g is o for g, o in zip(got, out))
            for src in range(comm.size):
                assert out[src][0] == src * 10 + comm.rank
            return True

        assert all(run_spmd(3, prog))

    def test_overlap_with_compute_between_post_and_wait(self):
        """Chunks delivered during the compute window count as overlapped."""

        def prog(comm):
            chunks = [np.zeros(100) + comm.rank for _ in range(comm.size)]
            req = comm.ialltoall(chunks)
            # a real compute window: by the time we wait, peers posted too
            comm.barrier()
            req.wait()
            return req.overlapped_bytes, req.posted_bytes

        for overlapped, posted in run_spmd(4, prog):
            assert posted == 3 * 100 * 8
            assert overlapped == posted  # everything arrived before the wait

    def test_test_reports_completion(self):
        def prog(comm):
            req = comm.ialltoall([np.ones(4)] * comm.size)
            comm.barrier()  # all posts are in
            deadline = 200
            while not req.test() and deadline:
                deadline -= 1
            assert req.test()
            got = req.wait()
            assert len(got) == comm.size
            return True

        assert all(run_spmd(3, prog))

    def test_waitall_many_rounds_in_flight(self):
        """Sequence tags keep several outstanding ialltoalls separated."""

        def prog(comm):
            reqs = [
                comm.ialltoall([np.array([r, comm.rank])] * comm.size)
                for r in range(5)
            ]
            for r, got in enumerate(waitall(reqs)):
                for src in range(comm.size):
                    assert got[src][0] == r and got[src][1] == src
            return True

        assert all(run_spmd(4, prog))

    def test_isend_irecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            rreq = comm.irecv(source=left)
            sreq = comm.isend(np.array([comm.rank]), dest=right)
            got = rreq.wait()
            sreq.wait()
            sreq.wait_acks()
            return int(got[0]) == left

        assert all(run_spmd(5, prog))

    def test_ack_credit_allows_buffer_reuse(self):
        """After wait_acks the posted staging buffer is provably free."""

        def prog(comm):
            buf = np.array([comm.rank, 0.0])
            for round_ in range(4):
                buf[1] = round_
                req = comm.ialltoall([buf] * comm.size)
                got = req.wait()
                for src in range(comm.size):
                    assert got[src][1] == round_
                req.wait_acks()  # every receiver consumed: safe to refill
            return True

        assert all(run_spmd(4, prog))

    def test_integrity_wraps_each_chunk(self):
        def prog(comm):
            got = comm.ialltoall([np.arange(3.0)] * comm.size).wait()
            for g in got:
                np.testing.assert_array_equal(g, np.arange(3.0))
            return True

        assert all(run_spmd(3, prog, integrity=True))

    def test_nonblocking_message_accounting(self):
        def prog(comm):
            comm.ialltoall([np.zeros(10)] * comm.size).wait()
            return comm.stats.messages, comm.stats.bytes

        msgs, byts = run_spmd(4, prog)[0]
        assert msgs == 4 * 3
        assert byts == 4 * 3 * 10 * 8

    def test_wrong_chunk_count_rejected(self):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.ialltoall([np.zeros(1)] * (comm.size + 1))
            comm.barrier()
            return True

        assert all(run_spmd(3, prog))


class TestPointToPoint:
    def test_ring_exchange(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.sendrecv(comm.rank, dest=right, source=left)
            return got == left

        assert all(run_spmd(5, prog))

    def test_tags_separate_messages(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
            elif comm.rank == 1:
                # receive in swapped order
                b = comm.recv(source=0, tag=2)
                a = comm.recv(source=0, tag=1)
                assert (a, b) == ("a", "b")
            comm.barrier()
            return True

        assert all(run_spmd(2, prog))


class TestErrorHandling:
    def test_exception_propagates_not_deadlocks(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(4, prog)

    def test_recv_timeout_raises(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1, timeout=0.1)
            return True

        with pytest.raises(SimMPIError):
            run_spmd(2, prog)


class TestSplitAndCartesian:
    def test_split_groups_by_color(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.size, sub.rank, sorted(sub.world_ranks)

        res = run_spmd(6, prog)
        assert res[0] == (3, 0, [0, 2, 4])
        assert res[3] == (3, 1, [1, 3, 5])

    def test_split_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        assert run_spmd(4, prog) == [3, 2, 1, 0]

    def test_cart_coords_row_major(self):
        def prog(comm):
            cart = comm.cart_create((2, 3))
            return cart.coords

        assert run_spmd(6, prog) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_cart_create_bad_dims(self):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.cart_create((2, 2))
            comm.barrier()
            return True

        assert all(run_spmd(6, prog))

    def test_cart_sub_comm_a_and_b(self):
        """CommA = same b coordinate; CommB = same a coordinate."""

        def prog(comm):
            cart = comm.cart_create((2, 4))
            comm_a = cart.cart_sub([True, False])
            comm_b = cart.cart_sub([False, True])
            a, b = cart.coords
            return (
                sorted(comm_a.world_ranks),
                sorted(comm_b.world_ranks),
                a,
                b,
            )

        res = run_spmd(8, prog)
        for rank, (wa, wb, a, b) in enumerate(res):
            assert wa == [b, 4 + b]
            assert wb == [4 * a + j for j in range(4)]

    def test_collectives_in_subcommunicators(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            comm_b = cart.cart_sub([False, True])
            return comm_b.allreduce(comm.rank)

        assert run_spmd(4, prog) == [1, 1, 5, 5]


class TestInstrumentation:
    def test_alltoall_message_accounting(self):
        def prog(comm):
            comm.alltoall([np.zeros(10)] * comm.size)
            return comm.stats.messages, comm.stats.bytes

        res = run_spmd(4, prog)
        # stats are shared communicator-wide: every rank reports the total
        msgs, byts = res[0]
        assert msgs == 4 * 3  # off-diagonal chunks only
        assert byts == 4 * 3 * 10 * 8

    def test_timeout_guard(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()  # others never arrive
            return True

        with pytest.raises(SimMPIError):
            run_spmd(2, prog, timeout=1.0)
