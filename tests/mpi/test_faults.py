"""Fault-injection tests: deterministic FaultPlan + hardened abort path.

The contract under test: whatever a peer rank does — die, drop a
payload, corrupt it, or stall — every *surviving* rank raises a typed
:class:`SimMPIError` naming the culprit within a bounded time.  Nobody
deadlocks, on the root communicator or on splits.
"""

import time

import numpy as np
import pytest

from repro.mpi import simmpi
from repro.mpi.simmpi import (
    FaultEvent,
    FaultPlan,
    RankFailure,
    ShrinkRequired,
    SimMPIError,
    run_spmd,
)

#: generous wall-clock ceiling for "bounded time": far below run_spmd's
#: default 120 s timeout, far above any healthy 4-rank program
BOUNDED = 10.0


def _run_expecting(plan, prog, nranks=4, exc_type=RankFailure):
    t0 = time.perf_counter()
    with pytest.raises(exc_type) as info:
        run_spmd(nranks, prog, fault_plan=plan, timeout=60.0)
    assert time.perf_counter() - t0 < BOUNDED
    return info.value


class TestFaultEventValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(action="explode", rank=0)

    def test_negative_call_rejected(self):
        with pytest.raises(ValueError, match="call index"):
            FaultEvent(action="kill", rank=0, call=-1)


class TestKill:
    @pytest.mark.parametrize("op", ["barrier", "bcast", "allgather", "alltoall", "allreduce"])
    def test_kill_in_each_collective_no_deadlock(self, op):
        """Victim raises RankFailure; every survivor raises SimMPIError
        naming the culprit rank — in bounded time, for every collective."""
        plan = FaultPlan([FaultEvent(action="kill", rank=2, op=op, call=1)])
        survivors = []

        def prog(comm):
            for _ in range(4):
                comm.barrier()
                # root=2 so the victim is the rank that deposits the
                # bcast payload (only the root injects in a bcast)
                comm.bcast(comm.rank, root=2)
                comm.allgather(comm.rank)
                comm.alltoall([np.array([comm.rank])] * comm.size)
                comm.allreduce(comm.rank)
            return True

        def wrapped(comm):
            try:
                return prog(comm)
            except SimMPIError as exc:
                survivors.append((comm.rank, exc))
                raise

        exc = _run_expecting(plan, wrapped)
        assert exc.rank == 2 and exc.op == op
        assert plan.triggered == [{"action": "kill", "rank": 2, "op": op, "call": 1}]
        assert len(survivors) == 3
        for rank, err in survivors:
            assert rank != 2
            assert err.rank == 2  # culprit named, not guessed
            assert "rank 2" in str(err)

    def test_kill_inside_split_subcommunicator(self):
        """The plan follows splits and the abort crosses communicator
        boundaries: ranks blocked on a *different* sub-communicator's
        barrier must still be released."""
        plan = FaultPlan([FaultEvent(action="kill", rank=3, op="allreduce", call=0)])

        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            for _ in range(3):
                sub.allreduce(sub.rank)
            return True

        exc = _run_expecting(plan, prog)
        assert exc.rank == 3 and exc.op == "allreduce"

    def test_kill_counts_only_matching_ops(self):
        """call indexes the victim's *matching* calls, so a plan pinned
        to (op, call) fires at the same program point every run."""
        order = []

        def prog(comm):
            comm.barrier()   # bcast call counter untouched
            comm.bcast(0)    # bcast call 0
            comm.barrier()
            if comm.rank == 0:
                order.append("reached")
            comm.bcast(1)    # bcast call 1 -> boom
            return True

        plan = FaultPlan([FaultEvent(action="kill", rank=0, op="bcast", call=1)])
        _run_expecting(plan, prog)
        assert order == ["reached"]


class TestDrop:
    @pytest.mark.parametrize("op", ["bcast", "allgather", "alltoall"])
    def test_dropped_payload_detected(self, op):
        plan = FaultPlan([FaultEvent(action="drop", rank=1, op=op)])

        def prog(comm):
            if op == "bcast":
                comm.bcast("x", root=1)
            elif op == "allgather":
                comm.allgather(comm.rank)
            else:
                comm.alltoall([np.array([comm.rank])] * comm.size)
            return True

        exc = _run_expecting(plan, prog, exc_type=SimMPIError)
        assert exc.rank == 1
        assert "dropped" in str(exc)

    def test_dropped_send_detected_by_receiver(self):
        plan = FaultPlan([FaultEvent(action="drop", rank=0, op="send")])

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()
            return True

        exc = _run_expecting(plan, prog, nranks=2, exc_type=SimMPIError)
        assert "dropped" in str(exc)  # culprit surfaces in the chain


class TestCorrupt:
    def test_corruption_is_deterministic(self):
        """Same seed -> same flipped byte; different seed -> (almost
        surely) a different corruption.  Receivers see the flip."""

        def prog(comm):
            payload = np.zeros(64) if comm.rank == 1 else None
            return comm.bcast(payload, root=1)

        def corrupted_with(seed):
            plan = FaultPlan(
                [FaultEvent(action="corrupt", rank=1, op="bcast")], seed=seed
            )
            out = run_spmd(4, prog, fault_plan=plan)
            for got in out[1:]:
                np.testing.assert_array_equal(got, out[0])
            return out[0]

        a = corrupted_with(7)
        b = corrupted_with(7)
        c = corrupted_with(8)
        assert np.count_nonzero(a) == 1  # exactly one flipped byte
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_corruption_of_alltoall_chunk(self):
        plan = FaultPlan([FaultEvent(action="corrupt", rank=0, op="alltoall")])

        def prog(comm):
            got = comm.alltoall([np.zeros(16) for _ in range(comm.size)])
            return sum(int(np.count_nonzero(g)) for g in got)

        out = run_spmd(2, prog, fault_plan=plan)
        assert sum(out) == 1  # one byte flipped somewhere in rank 0's chunks


class TestDelay:
    def test_delay_slows_but_preserves_results(self):
        plan = FaultPlan([FaultEvent(action="delay", rank=2, op="allgather", delay=0.2)])

        def prog(comm):
            return comm.allgather(comm.rank)

        t0 = time.perf_counter()
        out = run_spmd(4, prog, fault_plan=plan)
        assert time.perf_counter() - t0 >= 0.2
        assert out == [[0, 1, 2, 3]] * 4


class TestAbortHardening:
    def test_non_collective_crash_releases_peers(self):
        """A rank dying *outside* any collective (plain exception in user
        code) must still release peers blocked in a barrier."""

        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("segfault stand-in")
            comm.barrier()
            return True

        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="segfault"):
            run_spmd(3, prog, timeout=60.0)
        assert time.perf_counter() - t0 < BOUNDED

    def test_error_message_names_rank_and_op(self):
        plan = FaultPlan([FaultEvent(action="kill", rank=0, op="barrier")])

        def prog(comm):
            comm.barrier()
            return True

        exc = _run_expecting(plan, prog, nranks=2)
        assert isinstance(exc, RankFailure)
        assert exc.rank == 0 and exc.op == "barrier" and exc.call == 0


class TestTimeoutKnob:
    """One configurable context default, env-overridable (no 30 s cliffs)."""

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "7.5")
        assert simmpi.default_timeout() == 7.5
        assert simmpi.default_join_timeout() == 7.5 * simmpi.JOIN_TIMEOUT_FACTOR
        monkeypatch.delenv("REPRO_SIMMPI_TIMEOUT")
        assert simmpi.default_timeout() == simmpi.DEFAULT_TIMEOUT

    def test_recv_timeout_follows_context_default(self, monkeypatch):
        """A recv with no sender times out with a typed error at the
        configured default, not a hardcoded 30 s."""
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "0.3")

        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # nobody sends
            return True

        t0 = time.perf_counter()
        with pytest.raises(SimMPIError, match="timed out"):
            run_spmd(2, prog)
        assert time.perf_counter() - t0 < 5.0

    def test_explicit_recv_timeout_still_wins(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0, timeout=0.2)
            return True

        t0 = time.perf_counter()
        with pytest.raises(SimMPIError, match="timed out"):
            run_spmd(2, prog, timeout=20.0)
        assert time.perf_counter() - t0 < 5.0


class TestElasticShrink:
    """Survivor agreement: one consistent ShrinkRequired instead of abort."""

    def _prog(self, comm):
        for _ in range(4):
            comm.allreduce(comm.rank)
            comm.barrier()
        return True

    def test_survivors_agree_on_identical_shrink(self):
        plan = FaultPlan([FaultEvent(action="kill", rank=2, op="allreduce", call=1)])
        seen = []

        def prog(comm):
            try:
                return self._prog(comm)
            except ShrinkRequired as exc:
                seen.append((comm.rank, exc.survivors, exc.dead))
                raise

        t0 = time.perf_counter()
        with pytest.raises(ShrinkRequired) as info:
            run_spmd(4, prog, fault_plan=plan, elastic=True, timeout=60.0)
        assert time.perf_counter() - t0 < BOUNDED
        assert info.value.survivors == (0, 1, 3)
        assert info.value.dead == (2,)
        # every survivor observed the *same* agreed membership
        assert len(seen) == 3
        assert {s[1] for s in seen} == {(0, 1, 3)}
        assert {s[2] for s in seen} == {(2,)}

    def test_two_kills_same_epoch_one_agreement(self):
        """Two planned kills in the same epoch: the second victim may be
        released by the first failure before its own kill fires (and then
        legitimately survives), but the agreed membership is always a
        consistent partition with every fired kill in the dead set."""
        plan = FaultPlan(
            [
                FaultEvent(action="kill", rank=1, op="allreduce", call=1),
                FaultEvent(action="kill", rank=2, op="allreduce", call=1),
            ]
        )
        with pytest.raises(ShrinkRequired) as info:
            run_spmd(4, self._prog, fault_plan=plan, elastic=True, timeout=60.0)
        dead = set(info.value.dead)
        fired = {t["rank"] for t in plan.triggered}
        assert fired and fired <= {1, 2}
        assert dead == fired  # exactly the kills that fired are dead
        assert info.value.survivors == tuple(sorted(set(range(4)) - dead))

    def test_elastic_off_keeps_classic_abort(self):
        plan = FaultPlan([FaultEvent(action="kill", rank=2, op="allreduce", call=1)])
        exc = _run_expecting(plan, self._prog)
        assert exc.rank == 2

    def test_genuine_bug_outranks_shrink(self):
        """A non-fault crash (user bug) must not be masked as a shrink."""

        def prog(comm):
            if comm.rank == 1:
                raise KeyError("user bug")
            comm.barrier()
            return True

        with pytest.raises(KeyError, match="user bug"):
            run_spmd(3, prog, elastic=True, timeout=60.0)


class TestIntegrityEnvelope:
    """Checksummed payloads: corruption becomes a typed, attributed error."""

    def test_corrupt_bcast_detected_at_receivers(self):
        plan = FaultPlan([FaultEvent(action="corrupt", rank=1, op="bcast")])

        def prog(comm):
            payload = np.zeros(64) if comm.rank == 1 else None
            return comm.bcast(payload, root=1)

        t0 = time.perf_counter()
        with pytest.raises(SimMPIError) as info:
            run_spmd(4, prog, fault_plan=plan, integrity=True, timeout=60.0)
        assert time.perf_counter() - t0 < BOUNDED
        assert "corrupt payload" in str(info.value)
        assert info.value.rank == 1

    def test_corrupt_alltoall_chunk_detected(self):
        plan = FaultPlan([FaultEvent(action="corrupt", rank=0, op="alltoall")])

        def prog(comm):
            return comm.alltoall([np.zeros(16) for _ in range(comm.size)])

        with pytest.raises(SimMPIError, match="corrupt payload"):
            run_spmd(2, prog, fault_plan=plan, integrity=True, timeout=60.0)

    def test_clean_payloads_pass_unchanged(self):
        def prog(comm):
            got = comm.allgather(np.full(8, comm.rank, float))
            comm.barrier()
            parts = comm.alltoall([np.array([comm.rank, i]) for i in range(comm.size)])
            return got, parts

        out = run_spmd(3, prog, integrity=True)
        for rank, (got, parts) in enumerate(out):
            for r, arr in enumerate(got):
                np.testing.assert_array_equal(arr, np.full(8, r, float))
            for r, arr in enumerate(parts):
                np.testing.assert_array_equal(arr, np.array([r, rank]))
