"""RankPool census, placement disjointness, quarantine and grow-source tests."""

import threading

import pytest

from repro.mpi.pool import LeaseGrowSource, PoolExhausted, RankLease, RankPool


class TestPlacement:
    def test_acquire_leases_lowest_free_ranks(self):
        pool = RankPool(8)
        a = pool.acquire("a", 3)
        assert a.ranks == (0, 1, 2)
        b = pool.acquire("b", 4)
        assert b.ranks == (3, 4, 5, 6)
        assert pool.free_count() == 1

    def test_leases_are_disjoint(self):
        pool = RankPool(8)
        a = pool.acquire("a", 4)
        b = pool.acquire("b", 4)
        assert not set(a.ranks) & set(b.ranks)

    def test_exhaustion_is_typed_with_census(self):
        pool = RankPool(4)
        pool.acquire("a", 3)
        with pytest.raises(PoolExhausted) as exc:
            pool.acquire("b", 2)
        assert exc.value.requested == 2 and exc.value.free == 1

    def test_double_lease_rejected(self):
        pool = RankPool(4)
        pool.acquire("a", 2)
        with pytest.raises(ValueError, match="already holds"):
            pool.acquire("a", 1)

    def test_release_returns_ranks(self):
        pool = RankPool(4)
        pool.acquire("a", 4)
        pool.release("a")
        assert pool.free_count() == 4
        assert pool.lease("a") is None

    def test_census_snapshot(self):
        pool = RankPool(4)
        pool.acquire("a", 2)
        pool.quarantine(3, "flaky")
        c = pool.census()
        assert c == {
            "size": 4,
            "free": [2],
            "leased": {"a": [0, 1]},
            "quarantined": {3: "flaky"},
        }


class TestQuarantine:
    def test_shrink_quarantines_dead_pool_ranks(self):
        pool = RankPool(6)
        pool.acquire("a", 4)  # pool ranks 0-3
        new = pool.shrink("a", dead_local=[1])
        assert new.ranks == (0, 2, 3)
        assert pool.quarantined_ranks() == (1,)

    def test_quarantined_rank_never_placed(self):
        """Isolation: a rank failed in job A is invisible to job B."""
        pool = RankPool(4)
        pool.acquire("a", 2)
        pool.shrink("a", dead_local=[0])  # pool rank 0 quarantined
        pool.release("a")
        b = pool.acquire("b", 3)
        assert 0 not in b.ranks
        with pytest.raises(PoolExhausted):
            pool.acquire("c", 1)

    def test_shrink_maps_local_to_pool_ranks(self):
        """World rank i maps through lease.ranks[i] — after a first shrink
        the mapping is no longer the identity."""
        pool = RankPool(4)
        pool.acquire("a", 4)
        pool.shrink("a", dead_local=[1])  # lease now (0, 2, 3)
        new = pool.shrink("a", dead_local=[1])  # local 1 -> pool rank 2
        assert new.ranks == (0, 3)
        assert pool.quarantined_ranks() == (1, 2)

    def test_probe_frees_healthy_ranks_only(self):
        pool = RankPool(4)
        pool.quarantine(1, "x")
        pool.quarantine(2, "y")
        freed = pool.probe(lambda r: r == 2)
        assert freed == [2]
        assert pool.quarantined_ranks() == (1,)
        assert 2 in pool.census()["free"]

    def test_quarantine_leased_rank_rejected(self):
        pool = RankPool(2)
        pool.acquire("a", 2)
        with pytest.raises(ValueError, match="leased"):
            pool.quarantine(0)


class TestGrowSource:
    def test_probe_then_commit(self):
        pool = RankPool(4)
        pool.acquire("a", 2)
        src = LeaseGrowSource(pool, "a")
        assert src.available() == 2
        assert src.claim(2)
        assert pool.lease("a").ranks == (0, 1, 2, 3)

    def test_claim_is_all_or_nothing(self):
        pool = RankPool(4)
        pool.acquire("a", 3)
        src = LeaseGrowSource(pool, "a")
        assert not src.claim(2)  # only 1 free
        assert pool.lease("a").ranks == (0, 1, 2)
        assert pool.free_count() == 1

    def test_without_prober_quarantine_stays_invisible(self):
        pool = RankPool(3)
        pool.acquire("a", 2)
        pool.shrink("a", dead_local=[1])
        assert LeaseGrowSource(pool, "a").available() == 1  # rank 2 only

    def test_prober_returns_failed_rank_to_service(self):
        pool = RankPool(2)
        pool.acquire("a", 2)
        pool.shrink("a", dead_local=[1])
        src = LeaseGrowSource(pool, "a", prober=lambda r: True)
        assert src.available() == 1
        assert src.claim(1)
        assert pool.lease("a").ranks == (0, 1)

    def test_limit_caps_the_probe(self):
        pool = RankPool(8)
        pool.acquire("a", 2)
        assert LeaseGrowSource(pool, "a", limit=3).available() == 3

    def test_concurrent_claims_stay_disjoint(self):
        """Two jobs racing to grow never claim the same pool rank."""
        pool = RankPool(6)
        pool.acquire("a", 2)
        pool.acquire("b", 2)
        results = {}

        def grab(job):
            results[job] = pool.grow(job, 2)

        ts = [threading.Thread(target=grab, args=(j,)) for j in ("a", "b")]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        won = [l for l in results.values() if l is not None]
        assert len(won) == 1  # only 2 free ranks: exactly one winner
        la, lb = pool.lease("a"), pool.lease("b")
        assert not set(la.ranks) & set(lb.ranks)

    def test_lease_is_immutable_snapshot(self):
        pool = RankPool(4)
        before = pool.acquire("a", 2)
        pool.grow("a", 1)
        assert before.ranks == (0, 1)  # old snapshot untouched
        assert isinstance(before, RankLease) and before.size == 2
