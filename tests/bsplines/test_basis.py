"""de Boor basis function evaluation tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsplines.basis import (
    all_basis_functions,
    basis_function_derivatives,
    basis_functions,
    find_span,
)
from repro.bsplines.knots import clamped_knots, uniform_breakpoints


def make_knots(nintervals=8, degree=5):
    return clamped_knots(uniform_breakpoints(nintervals), degree), degree


class TestFindSpan:
    def test_interior(self):
        knots, p = make_knots()
        span = find_span(knots, p, 0.1)
        assert knots[span] <= 0.1 < knots[span + 1]

    def test_left_endpoint(self):
        knots, p = make_knots()
        assert find_span(knots, p, -1.0) == p

    def test_right_endpoint_is_last_real_span(self):
        knots, p = make_knots()
        span = find_span(knots, p, 1.0)
        assert knots[span] < knots[span + 1]
        assert knots[span + 1] == 1.0

    def test_outside_raises(self):
        knots, p = make_knots()
        with pytest.raises(ValueError):
            find_span(knots, p, 1.5)


class TestBasisFunctions:
    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_partition_of_unity(self, x):
        """B-spline values are non-negative and sum to one everywhere."""
        knots, p = make_knots()
        _, vals = basis_functions(knots, p, x)
        assert np.all(vals >= -1e-14)
        assert abs(vals.sum() - 1.0) < 1e-12

    def test_endpoint_interpolation(self):
        """Clamped splines: only the first basis function is 1 at the left wall."""
        knots, p = make_knots()
        span, vals = basis_functions(knots, p, -1.0)
        assert span == p
        np.testing.assert_allclose(vals, np.eye(p + 1)[0], atol=1e-14)

    def test_matches_scipy(self):
        """Cross-check against scipy's independent BSpline implementation."""
        from scipy.interpolate import BSpline

        knots, p = make_knots(10, 7)
        n = len(knots) - p - 1
        xs = np.linspace(-1, 1, 37)
        for j in range(n):
            c = np.zeros(n)
            c[j] = 1.0
            ref = BSpline(knots, c, p)(xs)
            ours = np.zeros_like(xs)
            for i, x in enumerate(xs):
                span, vals = basis_functions(knots, p, x)
                lo = span - p
                if lo <= j <= span:
                    ours[i] = vals[j - lo]
            np.testing.assert_allclose(ours, ref, atol=1e-12)


class TestDerivatives:
    def test_zeroth_derivative_matches_values(self):
        knots, p = make_knots()
        for x in [-0.9, -0.3, 0.0, 0.51, 1.0]:
            s1, vals = basis_functions(knots, p, x)
            s2, ders = basis_function_derivatives(knots, p, x, 2)
            assert s1 == s2
            np.testing.assert_allclose(ders[0], vals, atol=1e-13)

    def test_derivative_sum_is_zero(self):
        """d/dx of the partition of unity: derivatives sum to zero."""
        knots, p = make_knots()
        for x in np.linspace(-0.99, 0.99, 11):
            _, ders = basis_function_derivatives(knots, p, x, 2)
            assert abs(ders[1].sum()) < 1e-10
            assert abs(ders[2].sum()) < 1e-9

    def test_finite_difference_consistency(self):
        knots, p = make_knots(12, 6)
        x, h = 0.3123, 1e-6
        span = find_span(knots, p, x)
        _, d0m = basis_function_derivatives(knots, p, x - h, 0, span=span)
        _, d0p = basis_function_derivatives(knots, p, x + h, 0, span=span)
        _, d1 = basis_function_derivatives(knots, p, x, 1, span=span)
        np.testing.assert_allclose((d0p[0] - d0m[0]) / (2 * h), d1[1], rtol=1e-4, atol=1e-6)

    def test_derivatives_beyond_degree_vanish(self):
        knots, p = make_knots(6, 3)
        _, ders = basis_function_derivatives(knots, p, 0.2, p + 2)
        np.testing.assert_allclose(ders[p + 1 :], 0.0, atol=1e-9)


class TestAllBasisFunctions:
    def test_batch_matches_scalar(self):
        knots, p = make_knots()
        xs = np.linspace(-1, 1, 9)
        spans, ders = all_basis_functions(knots, p, xs, nderiv=1)
        for i, x in enumerate(xs):
            s, d = basis_function_derivatives(knots, p, x, 1)
            assert spans[i] == s
            np.testing.assert_allclose(ders[i], d)
