"""Knot vector and breakpoint distribution tests."""

import numpy as np
import pytest

from repro.bsplines.knots import (
    channel_breakpoints,
    clamped_knots,
    num_basis,
    uniform_breakpoints,
)


class TestUniformBreakpoints:
    def test_count_and_range(self):
        bp = uniform_breakpoints(10)
        assert bp.shape == (11,)
        assert bp[0] == -1.0 and bp[-1] == 1.0

    def test_custom_interval(self):
        bp = uniform_breakpoints(4, a=0.0, b=2.0)
        np.testing.assert_allclose(bp, [0.0, 0.5, 1.0, 1.5, 2.0])

    def test_rejects_zero_intervals(self):
        with pytest.raises(ValueError):
            uniform_breakpoints(0)


class TestChannelBreakpoints:
    def test_endpoints_exact(self):
        bp = channel_breakpoints(16, stretch=3.0)
        assert bp[0] == -1.0 and bp[-1] == 1.0

    def test_monotone(self):
        bp = channel_breakpoints(32, stretch=2.5)
        assert np.all(np.diff(bp) > 0)

    def test_wall_clustering(self):
        """Stretched grid has smaller intervals at the walls than centre."""
        bp = channel_breakpoints(32, stretch=2.0)
        d = np.diff(bp)
        assert d[0] < d[len(d) // 2]
        assert d[-1] < d[len(d) // 2]

    def test_zero_stretch_is_uniform(self):
        bp = channel_breakpoints(8, stretch=0.0)
        np.testing.assert_allclose(bp, uniform_breakpoints(8), atol=1e-15)

    def test_symmetric_about_centre(self):
        bp = channel_breakpoints(20, stretch=1.7)
        np.testing.assert_allclose(bp, -bp[::-1], atol=1e-15)

    def test_rejects_negative_stretch(self):
        with pytest.raises(ValueError):
            channel_breakpoints(8, stretch=-1.0)


class TestClampedKnots:
    def test_multiplicity(self):
        bp = uniform_breakpoints(5)
        p = 3
        knots = clamped_knots(bp, p)
        assert np.all(knots[:p + 1] == bp[0])
        assert np.all(knots[-(p + 1):] == bp[-1])

    def test_length_and_num_basis(self):
        bp = uniform_breakpoints(9)  # 10 breakpoints
        p = 7
        knots = clamped_knots(bp, p)
        assert len(knots) == 10 + 2 * p
        assert num_basis(bp, p) == 10 + p - 1

    def test_rejects_nonmonotone(self):
        with pytest.raises(ValueError):
            clamped_knots(np.array([0.0, 0.5, 0.5, 1.0]), 3)

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            clamped_knots(uniform_breakpoints(4), 0)
