"""BSplineBasis facade tests: interpolation, differentiation, integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsplines import BSplineBasis
from repro.bsplines.collocation import collocation_matrix, greville_points, to_scipy_banded


class TestConstruction:
    def test_dof_count(self):
        b = BSplineBasis(33, degree=7)
        assert b.n == 33
        assert len(b.collocation_points) == 33

    def test_walls_are_collocation_points(self):
        b = BSplineBasis(20, degree=7)
        assert b.collocation_points[0] == -1.0
        assert b.collocation_points[-1] == 1.0

    def test_too_few_dof_raises(self):
        with pytest.raises(ValueError):
            BSplineBasis(5, degree=7)

    def test_bandwidths_bounded_by_degree(self):
        b = BSplineBasis(30, degree=7)
        kl, ku = b.bandwidths
        assert kl <= 7 and ku <= 7


class TestPolynomialReproduction:
    """Degree-p splines reproduce polynomials up to degree p exactly."""

    @pytest.mark.parametrize("deg", [0, 1, 3, 5, 7])
    def test_interpolate_evaluate(self, deg):
        b = BSplineBasis(24, degree=7, stretch=1.5)
        coeff = np.arange(1, deg + 2, dtype=float)
        x = b.collocation_points
        f = np.polynomial.polynomial.polyval(x, coeff)
        a = b.interpolate(f)
        xx = np.linspace(-1, 1, 57)
        expected = np.polynomial.polynomial.polyval(xx, coeff)
        np.testing.assert_allclose(b.evaluate(a, xx), expected, atol=1e-11)

    def test_second_derivative_exact_for_polynomials(self):
        b = BSplineBasis(20, degree=7)
        x = b.collocation_points
        a = b.interpolate(x**6)
        np.testing.assert_allclose(
            b.values_at_collocation(a, 2), 30 * x**4, atol=1e-8
        )

    def test_integral_exact(self):
        b = BSplineBasis(18, degree=7)
        a = b.interpolate(b.collocation_points**4)
        assert abs(b.integrate(a) - 2.0 / 5.0) < 1e-12


class TestSpectralAccuracy:
    def test_smooth_function_convergence(self):
        """Error should fall like h^{p+1} = h^8 for a smooth function."""
        errs = []
        for n in (16, 32):
            b = BSplineBasis(n, degree=7, stretch=0.0)
            a = b.interpolate(np.sin(3 * b.collocation_points))
            xx = np.linspace(-1, 1, 201)
            errs.append(np.abs(b.evaluate(a, xx) - np.sin(3 * xx)).max())
        order = np.log2(errs[0] / errs[1])
        assert order > 6.0, f"observed order {order}"


class TestBatchedOperations:
    def test_batched_complex_interpolation(self, rng):
        b = BSplineBasis(16, degree=5)
        vals = rng.standard_normal((3, 4, b.n)) + 1j * rng.standard_normal((3, 4, b.n))
        a = b.interpolate(vals)
        assert a.shape == vals.shape
        np.testing.assert_allclose(b.values_at_collocation(a), vals, atol=1e-12)

    def test_values_derivative_consistent_with_evaluate(self, rng):
        b = BSplineBasis(16, degree=5)
        a = rng.standard_normal(b.n)
        np.testing.assert_allclose(
            b.values_at_collocation(a, 1),
            b.evaluate(a, b.collocation_points, 1),
            atol=1e-10,
        )


class TestCollocationWeights:
    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_integrates_polynomials(self, deg):
        b = BSplineBasis(20, degree=7, stretch=2.0)
        x = b.collocation_points
        exact = (1.0 - (-1.0) ** (deg + 1)) / (deg + 1)
        assert abs(b.collocation_weights @ x**deg - exact) < 1e-10


class TestGrevilleHelpers:
    def test_greville_monotone(self):
        b = BSplineBasis(25, degree=7, stretch=2.0)
        assert np.all(np.diff(b.collocation_points) > 0)

    def test_scipy_banded_packing_roundtrip(self):
        b = BSplineBasis(14, degree=3)
        dense = b.colloc_matrix(0)
        kl, ku = b.bandwidths
        ab = to_scipy_banded(dense, kl, ku)
        # unpack and compare
        n = b.n
        rebuilt = np.zeros_like(dense)
        for i in range(n):
            for j in range(max(0, i - kl), min(n, i + ku + 1)):
                rebuilt[i, j] = ab[ku + i - j, j]
        np.testing.assert_array_equal(rebuilt, dense)

    def test_collocation_matrix_row_sums(self):
        """Partition of unity: each row of the value matrix sums to 1."""
        b = BSplineBasis(22, degree=7)
        np.testing.assert_allclose(b.colloc_matrix(0).sum(axis=1), 1.0, atol=1e-12)
