"""GridCounts operation-count tests and paper-data integrity checks."""

import numpy as np
import pytest

from repro.perfmodel import paper_data as P
from repro.perfmodel.kernels import (
    ADVANCE_FLOPS_PER_POINT,
    BACKWARD_FIELDS,
    FORWARD_FIELDS,
    PASSES_PER_SUBSTEP,
    SUBSTEPS,
    GridCounts,
)


class TestGridCounts:
    def test_mode_and_quadrature_sizes(self):
        c = GridCounts(nx=2048, ny=1024, nz=1024)
        assert c.mx == 1024 and c.mz == 1023
        assert c.nxq == 3072 and c.nzq == 1536

    def test_dealias_flag(self):
        c = GridCounts(nx=2048, ny=1024, nz=1024, dealias=False)
        assert c.nxq == 2048 and c.nzq == 1024

    def test_fft_flops_scale_n_log_n(self):
        small = GridCounts(nx=1024, ny=64, nz=256)
        big = GridCounts(nx=4096, ny=64, nz=256)
        ratio = big.x_fft_flops() / small.x_fft_flops()
        n_ratio = 4 * np.log2(big.nxq) / np.log2(small.nxq)
        assert ratio == pytest.approx(n_ratio, rel=1e-12)

    def test_transpose_volumes(self):
        c = GridCounts(nx=256, ny=64, nz=128)
        assert c.yz_bytes() == c.mode_points * 16
        assert c.zx_bytes() == c.mx * c.nzq * c.ny * 16
        assert c.zx_bytes() / c.yz_bytes() == pytest.approx(c.nzq / c.mz)

    def test_per_step_totals(self):
        c = GridCounts(nx=256, ny=64, nz=128)
        z, x = c.fft_flops_per_step()
        passes = SUBSTEPS * PASSES_PER_SUBSTEP
        assert z == pytest.approx(passes * c.z_fft_flops())
        assert x == pytest.approx(passes * c.x_fft_flops())
        assert c.advance_flops_per_step() == pytest.approx(
            ADVANCE_FLOPS_PER_POINT * c.mode_points * SUBSTEPS
        )

    def test_pass_structure_matches_paper(self):
        """§2.3: 3 velocity fields down, 5 product fields back, per substep."""
        assert FORWARD_FIELDS == 3
        assert BACKWARD_FIELDS == 5
        assert SUBSTEPS == 3


class TestPaperDataIntegrity:
    """Transcription sanity: sections must sum to the printed totals."""

    @pytest.mark.parametrize("table", [P.TABLE9, P.TABLE10])
    def test_sections_sum_to_total(self, table):
        for system, rows in table.items():
            for cores, (t, f, a, tot) in rows.items():
                assert t + f + a == pytest.approx(tot, rel=0.02), (system, cores)

    def test_table11_consistent_with_table9(self):
        for cores, (mpi, hyb) in P.TABLE11_STRONG.items():
            assert mpi == pytest.approx(P.TABLE9["Mira (MPI)"][cores][3], rel=0.01)
            assert hyb == pytest.approx(P.TABLE9["Mira (Hybrid)"][cores][3], rel=0.01)

    def test_table6_efficiency_claims(self):
        """The custom column's Mira super-scaling: 8192-core entry beats
        perfect scaling from 128 cores."""
        t128 = P.TABLE6_MIRA_SMALL[128][1]
        t8192 = P.TABLE6_MIRA_SMALL[8192][1]
        assert t128 / t8192 > 8192 / 128  # efficiency > 100%

    def test_headlines_present(self):
        assert P.HEADLINES["production_dof"] == 242e9
        assert P.HEADLINES["aggregate_tflops_786k"] == 271.0
