"""Timestep model tests: golden shapes against the paper's Tables 5, 9-11."""

import pytest

from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import BLUE_WATERS, LONESTAR, MIRA, STAMPEDE
from repro.perfmodel.network import SubcommGeometry, comm_geometry
from repro.perfmodel.timestep import ParallelLayout, TimestepModel


class TestParallelLayout:
    def test_mpi_tasks(self):
        lay = ParallelLayout(MIRA, 131072, mode="mpi")
        assert lay.tasks == 131072
        assert lay.tasks_per_node == 16
        assert lay.comm_b_size == 16  # node-local by default

    def test_hybrid_tasks(self):
        lay = ParallelLayout(MIRA, 131072, mode="hybrid")
        assert lay.tasks == 8192
        assert lay.tasks_per_node == 1

    def test_explicit_pb(self):
        lay = ParallelLayout(MIRA, 8192, mode="mpi", pb=512)
        assert lay.comm_a_size == 16

    def test_invalid_pb(self):
        with pytest.raises(ValueError):
            _ = ParallelLayout(MIRA, 8192, mode="mpi", pb=100).comm_b_size

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ParallelLayout(MIRA, 8192, mode="openmp")


class TestCommGeometry:
    def test_node_local(self):
        g = comm_geometry(16, stride=1, tasks_per_node=16)
        assert g.members_on_node == 16
        assert g.off_node_fraction == 0.0

    def test_strided_off_node(self):
        g = comm_geometry(512, stride=16, tasks_per_node=16)
        assert g.members_on_node == 1
        assert g.off_node_fraction == pytest.approx(511 / 512)

    def test_single_member(self):
        g = SubcommGeometry(size=1, members_on_node=1)
        assert g.off_node_fraction == 0.0


def efficiency(table):
    """Strong-scaling efficiencies relative to the smallest core count."""
    cores = sorted(table)
    t0, c0 = table[cores[0]], cores[0]
    return {c: (t0 * c0) / (table[c] * c) for c in cores}


class TestStrongScalingShape:
    """Golden-shape assertions: the model must reproduce who degrades and
    roughly how much, per Table 9."""

    def model_totals(self, machine, grid, cores_list, mode="mpi"):
        m = TimestepModel(machine, *grid)
        return {
            c: m.section_times(ParallelLayout(machine, c, mode=mode)).total
            for c in cores_list
        }

    def test_mira_mpi_near_perfect(self):
        totals = self.model_totals(MIRA, P.TABLE7["Mira"], list(P.TABLE9["Mira (MPI)"]))
        eff = efficiency(totals)
        assert eff[786432] > 0.85  # paper: 97%

    def test_mira_hybrid_80pct_at_786k(self):
        """The abstract's headline: ~80% at 786K vs 65K (hybrid)."""
        totals = self.model_totals(
            MIRA, P.TABLE7["Mira"], list(P.TABLE9["Mira (Hybrid)"]), mode="hybrid"
        )
        eff = efficiency(totals)
        assert 0.6 < eff[786432] < 1.0

    def test_blue_waters_transpose_collapse(self):
        """Table 9: Blue Waters transpose efficiency falls to ~25%."""
        m = TimestepModel(BLUE_WATERS, *P.TABLE7["Blue Waters"])
        t = {
            c: m.transpose_time(ParallelLayout(BLUE_WATERS, c))
            for c in P.TABLE9["Blue Waters"]
        }
        eff = efficiency(t)
        assert eff[16384] < 0.45

    def test_blue_waters_communication_fraction_grows(self):
        """§5.1: communication is ~80% at 2048 cores rising toward ~93%."""
        m = TimestepModel(BLUE_WATERS, *P.TABLE7["Blue Waters"])
        fracs = []
        for c in (2048, 16384):
            s = m.section_times(ParallelLayout(BLUE_WATERS, c))
            fracs.append(s.transpose / s.total)
        assert fracs[0] > 0.6
        assert fracs[1] > fracs[0]

    def test_on_node_kernels_scale_perfectly(self):
        """FFT and advance columns scale ~linearly everywhere (Table 9)."""
        for mach, grid in ((LONESTAR, P.TABLE7["Lonestar"]), (STAMPEDE, P.TABLE7["Stampede"])):
            m = TimestepModel(mach, *grid)
            cores = sorted(P.TABLE9[mach.name])
            a0 = m.advance_time(ParallelLayout(mach, cores[0]))
            a1 = m.advance_time(ParallelLayout(mach, cores[-1]))
            assert a0 / a1 == pytest.approx(cores[-1] / cores[0], rel=0.01)

    def test_absolute_times_within_2x_of_paper(self):
        """Calibration guard: every modelled section within 2x of Table 9."""
        cases = [
            (MIRA, P.TABLE7["Mira"], "Mira (MPI)", "mpi"),
            (MIRA, P.TABLE7["Mira"], "Mira (Hybrid)", "hybrid"),
            (LONESTAR, P.TABLE7["Lonestar"], "Lonestar", "mpi"),
            (STAMPEDE, P.TABLE7["Stampede"], "Stampede", "mpi"),
            (BLUE_WATERS, P.TABLE7["Blue Waters"], "Blue Waters", "mpi"),
        ]
        for mach, grid, key, mode in cases:
            m = TimestepModel(mach, *grid)
            for cores, row in P.TABLE9[key].items():
                s = m.section_times(ParallelLayout(mach, cores, mode=mode))
                for model_v, paper_v in zip(s.as_tuple(), row):
                    assert 0.5 < model_v / paper_v < 2.0, (key, cores)


class TestWeakScalingShape:
    def test_fft_degrades_with_growing_nx(self):
        """§5.2: weak-scaling FFT loses efficiency (N log N + cache)."""
        nxs, ny, nz = P.TABLE8["Mira"]
        per_core = []
        for nx, cores in zip(nxs, sorted(P.TABLE10["Mira (MPI)"])):
            m = TimestepModel(MIRA, nx, ny, nz)
            per_core.append(m.fft_time(ParallelLayout(MIRA, cores)))
        assert per_core[-1] > 1.5 * per_core[0]

    def test_advance_weak_scales_perfectly(self):
        nxs, ny, nz = P.TABLE8["Mira"]
        times = []
        for nx, cores in zip(nxs, sorted(P.TABLE10["Mira (MPI)"])):
            m = TimestepModel(MIRA, nx, ny, nz)
            times.append(m.advance_time(ParallelLayout(MIRA, cores)))
        assert max(times) / min(times) < 1.05


class TestCommGridSweep:
    def test_table5_ordering_mira(self):
        """Node-local CommB is fastest; cost grows as CommB leaves the node."""
        m = TimestepModel(MIRA, 2048, 1024, 1024)
        sweep = m.comm_grid_sweep(8192, list(P.TABLE5_MIRA.keys()))
        ordered = [sweep[k] for k in sorted(P.TABLE5_MIRA, key=lambda k: k[1])]
        assert ordered[0] == min(ordered)
        assert ordered[-1] > 1.3 * ordered[0]

    def test_table5_lonestar_local_fastest(self):
        m = TimestepModel(LONESTAR, 1536, 384, 1024)
        sweep = m.comm_grid_sweep(384, list(P.TABLE5_LONESTAR.keys()))
        assert sweep[(32, 12)] == min(sweep.values())

    def test_sweep_validates_grid(self):
        m = TimestepModel(MIRA, 2048, 1024, 1024)
        with pytest.raises(ValueError):
            m.comm_grid_sweep(8192, [(100, 16)])


class TestMPIvsHybrid:
    def test_hybrid_wins_midscale_converges_at_786k(self):
        """Table 11: hybrid ~1.1-1.2x faster until the torus saturates."""
        m = TimestepModel(MIRA, *P.TABLE7["Mira"])
        ratios = {}
        for cores in (131072, 262144, 786432):
            mpi = m.section_times(ParallelLayout(MIRA, cores, mode="mpi")).total
            hyb = m.section_times(ParallelLayout(MIRA, cores, mode="hybrid")).total
            ratios[cores] = mpi / hyb
        assert ratios[131072] > 1.0
        assert abs(ratios[786432] - 1.0) < abs(ratios[131072] - 1.0) + 0.05


class TestAggregateFlops:
    def test_headline_rates(self):
        """§5.3: ~271 TF aggregate (2.7% of peak), ~906 TF on-node at 786K."""
        m = TimestepModel(MIRA, *P.TABLE7["Mira"])
        agg = m.aggregate_flops(ParallelLayout(MIRA, 786432, mode="hybrid"))
        assert 100e12 < agg["total_flops"] < 700e12
        assert agg["on_node_flops"] > agg["total_flops"]
        assert 0.01 < agg["peak_fraction"] < 0.06
