"""Machine/network spec tests."""

import pytest

from repro.perfmodel.machine import BLUE_WATERS, LONESTAR, MACHINES, MIRA, STAMPEDE


class TestSpecs:
    def test_all_four_systems_present(self):
        assert set(MACHINES) == {"Mira", "Lonestar", "Stampede", "Blue Waters"}

    def test_mira_matches_paper_hardware(self):
        """§3: Power BQC 16C 1.60 GHz; §4.1.2: 12.8 GF/core peak, 18 B/cycle."""
        assert MIRA.cores_per_node == 16
        assert MIRA.hw_threads_per_core == 4
        assert MIRA.clock_hz == 1.6e9
        assert MIRA.flops_per_core == 12.8e9
        assert MIRA.ddr_bw / MIRA.clock_hz == pytest.approx(18.0)

    def test_mira_advance_rate_is_table2(self):
        """The fitted sustained advance rate lands on Table 2's 1.16 GF."""
        assert MIRA.advance_gflops_per_core == pytest.approx(1.16, rel=0.05)

    def test_node_helpers(self):
        assert MIRA.nodes(786432) == 49152
        assert LONESTAR.nodes(384) == 32
        with pytest.raises(ValueError):
            MIRA.nodes(100)

    def test_interconnect_kinds(self):
        assert MIRA.network.kind == "torus" and MIRA.network.dims == 5
        assert BLUE_WATERS.network.kind == "torus" and BLUE_WATERS.network.dims == 3
        assert LONESTAR.network.kind == "fattree"
        assert STAMPEDE.network.kind == "fattree"


class TestNetworkLaws:
    def test_torus_saturation_monotone(self):
        s = [MIRA.network.saturation(n) for n in (64, 512, 4096, 49152)]
        assert s == sorted(s, reverse=True)

    def test_5d_torus_degrades_less_than_3d(self):
        """The paper's Blue-Waters-vs-Mira story: 3-D tori collapse."""
        mira_drop = MIRA.network.saturation(4096) / MIRA.network.saturation(128)
        bw_drop = BLUE_WATERS.network.saturation(4096) / BLUE_WATERS.network.saturation(128)
        assert bw_drop < mira_drop

    def test_small_torus_is_link_rich(self):
        assert MIRA.network.saturation(8) > 1.0

    def test_fattree_flat_then_decay(self):
        net = STAMPEDE.network
        assert net.saturation(16) == 1.0
        assert net.saturation(512) < 1.0

    def test_task_factor(self):
        net = MIRA.network
        assert net.task_factor(1) == 1.0
        assert net.task_factor(16) < net.task_factor(2) < 1.0

    def test_effective_bw_mpi_vs_hybrid(self):
        """Hybrid sees more bandwidth until the torus saturates (§5.3)."""
        net = MIRA.network
        mid = 8192
        huge = 49152
        assert net.effective_bw(mid, 1) > net.effective_bw(mid, 16)
        ratio_mid = net.effective_bw(mid, 1) / net.effective_bw(mid, 16)
        ratio_huge = net.effective_bw(huge, 1) / net.effective_bw(huge, 16)
        assert ratio_huge < ratio_mid  # advantage shrinks at scale

    def test_message_efficiency_bounds(self):
        net = MIRA.network
        assert net.message_efficiency(0) == 0.0
        assert 0.99 < net.message_efficiency(1e9) <= 1.0

    def test_fft_line_penalty(self):
        assert MIRA.fft_line_penalty(100) == 1.0
        assert MIRA.fft_line_penalty(100000) > MIRA.fft_line_penalty(10000) > 1.0
