"""Production-campaign planning tests (paper §6 headline numbers)."""

import pytest

from repro.perfmodel.production import (
    FLOW_THROUGHS,
    PAPER_CORE_HOURS,
    PRODUCTION_CORES,
    PRODUCTION_GRID,
    STEPS_PER_FLOW_THROUGH,
    comparison_dof,
    degrees_of_freedom,
    memory_footprint_bytes,
    plan_campaign,
)


class TestCampaignPlanning:
    def test_paper_core_hours_within_2x(self):
        """§6: 650,000 steps on 524,288 cores ~ 260 million core-hours."""
        est = plan_campaign()
        assert est.total_steps == FLOW_THROUGHS * STEPS_PER_FLOW_THROUGH
        assert est.cores == PRODUCTION_CORES
        assert 0.5 < est.core_hours / PAPER_CORE_HOURS < 2.0

    def test_implied_step_time_reasonable(self):
        """The paper's arithmetic implies ~2.75 s/step; the model should land
        in the same regime on the production grid."""
        est = plan_campaign()
        assert 1.0 < est.seconds_per_step < 6.0

    def test_wall_days_plausible(self):
        """Months of wall time, not hours, not years."""
        est = plan_campaign()
        assert 7.0 < est.wall_days < 365.0

    def test_mpi_mode_campaign_costs_at_least_as_much(self):
        hybrid = plan_campaign(mode="hybrid")
        mpi = plan_campaign(mode="mpi")
        assert mpi.core_hours > 0.9 * hybrid.core_hours


class TestSizeClaims:
    def test_dof_order_of_magnitude(self):
        """10240 x 1536 x 7680 -> ~181e9 spectral DOF (paper quotes 242e9
        with its basis conventions) — same order, right regime."""
        dof = degrees_of_freedom(PRODUCTION_GRID)
        assert 1.2e11 < dof < 3.0e11

    def test_larger_than_previous_channel_dns(self):
        """§1/§6: 15x the Hoyas-Jiménez 2006 channel."""
        ratios = comparison_dof()
        assert ratios["hoyas_ratio"] > 5.0

    def test_memory_footprint_needs_a_big_machine(self):
        """The production state does not fit any single node (that is why
        524,288 cores): tens of TB."""
        bytes_total = memory_footprint_bytes(PRODUCTION_GRID)
        assert bytes_total > 5e12  # > 5 TB
        per_node = bytes_total / (PRODUCTION_CORES / 16)
        assert per_node < 16e9  # fits Mira's 16 GB/node when distributed
