"""Simulated HPM counter tests (Table 2)."""

import pytest

from repro.perfmodel import paper_data as P
from repro.perfmodel.counters import (
    ARITHMETIC_INTENSITY,
    simd_padding_ratio,
    simulate_hpm_counters,
)


class TestScalarBuild:
    def test_matches_table2_noSIMD(self):
        c = simulate_hpm_counters(simd=False)
        p = P.TABLE2["NoSIMD"]
        assert c.gflops == pytest.approx(p["gflops"], rel=0.05)
        assert c.ddr_bytes_per_cycle == pytest.approx(p["ddr_bytes_per_cycle"], rel=0.02)
        assert c.ipc == pytest.approx(p["ipc"], rel=0.1)
        assert c.elapsed == pytest.approx(p["elapsed"], rel=0.05)

    def test_memory_bound_diagnosis(self):
        """The paper's conclusion: ~9% of peak flops, >90% of DDR peak."""
        c = simulate_hpm_counters(simd=False)
        assert c.gflops_pct < 12.0
        assert c.ddr_bytes_per_cycle / 18.0 > 0.9

    def test_l1_dominated(self):
        c = simulate_hpm_counters(simd=False)
        assert c.l1_pct > 97.0
        assert c.l1_pct + c.l2_pct + c.ddr_pct == pytest.approx(100.0)


class TestSIMDBuild:
    def test_simd_raises_flops_but_slows_down(self):
        """Table 2's punchline, derived not copied."""
        scalar = simulate_hpm_counters(simd=False)
        simd = simulate_hpm_counters(simd=True)
        assert simd.gflops > 3.0 * scalar.gflops
        assert simd.elapsed > scalar.elapsed

    def test_padding_ratio_structural(self):
        """(16/15)² x 3.75 ~ 4.27, close to the measured 4.96/1.16 = 4.28."""
        assert simd_padding_ratio() == pytest.approx(4.96 / 1.16, rel=0.05)

    def test_simd_ddr_traffic_lower(self):
        simd = simulate_hpm_counters(simd=True)
        scalar = simulate_hpm_counters(simd=False)
        assert simd.ddr_bytes_per_cycle < scalar.ddr_bytes_per_cycle

    def test_simd_ipc_higher(self):
        assert simulate_hpm_counters(True).ipc > simulate_hpm_counters(False).ipc


class TestModelConsistency:
    def test_arithmetic_intensity_matches_table2(self):
        """AI implied by 1.16 GF against 16.8 B/cycle at 1.6 GHz."""
        implied = 1.16e9 / (16.8 * 1.6e9)
        assert ARITHMETIC_INTENSITY == pytest.approx(implied, rel=0.02)

    def test_scaling_with_problem_size(self):
        small = simulate_hpm_counters(False, points=1e6)
        large = simulate_hpm_counters(False, points=4e6)
        assert large.elapsed == pytest.approx(4 * small.elapsed)
        assert large.gflops == pytest.approx(small.gflops)
