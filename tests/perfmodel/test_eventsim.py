"""Fluid network simulator tests, including cross-validation against the
analytic transpose model."""

import numpy as np
import pytest

from repro.perfmodel.eventsim import (
    FabricSpec,
    Message,
    alltoall_messages,
    simulate_subcomm_alltoall,
    simulate_traffic,
)
from repro.perfmodel.machine import MIRA
from repro.perfmodel.network import TransposeCostModel, comm_geometry


def spec(inj=1.0, ej=1.0, fab=100.0, loc=10.0):
    return FabricSpec(injection_bw=inj, ejection_bw=ej, fabric_bw=fab, local_bw=loc)


class TestFluidPrimitives:
    def test_single_message_injection_limited(self):
        msgs = [Message(src=0, dst=1, remaining=2.0)]
        assert simulate_traffic(msgs, spec(inj=1.0), nodes=2) == pytest.approx(2.0)

    def test_two_messages_share_injection(self):
        msgs = [Message(0, 1, 1.0), Message(0, 2, 1.0)]
        # both leave node 0: fair share 0.5 each -> 2 s
        assert simulate_traffic(msgs, spec(), nodes=3) == pytest.approx(2.0)

    def test_ejection_bottleneck(self):
        msgs = [Message(0, 2, 1.0), Message(1, 2, 1.0)]
        assert simulate_traffic(msgs, spec(), nodes=3) == pytest.approx(2.0)

    def test_fabric_bottleneck(self):
        # 4 disjoint src->dst pairs, fabric can only carry 1 B/s total
        msgs = [Message(i, i + 4, 1.0) for i in range(4)]
        t = simulate_traffic(msgs, spec(fab=1.0), nodes=8)
        assert t == pytest.approx(4.0)

    def test_local_messages_use_memory_path(self):
        msgs = [Message(0, 0, 10.0)]
        assert simulate_traffic(msgs, spec(loc=10.0), nodes=1) == pytest.approx(1.0)

    def test_completion_order_respected(self):
        """A short message finishes and frees capacity for a long one."""
        msgs = [Message(0, 1, 1.0), Message(0, 2, 3.0)]
        # share 0.5 until t=2 (first done), then rate 1: (3-1)/1 = 2 more
        assert simulate_traffic(msgs, spec(), nodes=3) == pytest.approx(4.0)

    def test_volume_linearity(self):
        m1 = [Message(0, 1, 1.0), Message(1, 0, 1.0)]
        m2 = [Message(0, 1, 2.0), Message(1, 0, 2.0)]
        t1 = simulate_traffic(m1, spec(), nodes=2)
        t2 = simulate_traffic(m2, spec(), nodes=2)
        assert t2 == pytest.approx(2 * t1)


class TestMessageConstruction:
    def test_alltoall_message_count(self):
        groups = [[0, 1, 2, 3]]
        msgs = alltoall_messages(groups, 1.0, node_of=lambda r: r // 2)
        assert len(msgs) == 12
        local = [m for m in msgs if m.src == m.dst]
        assert len(local) == 4  # pairs within each 2-rank node


class TestCrossValidation:
    """The fluid simulator and the analytic model must agree on shape."""

    def test_node_local_subcomm_is_cheap(self):
        """CommB inside the node never touches the fabric."""
        t_local = simulate_subcomm_alltoall(
            MIRA, nodes=4, tasks_per_node=4, sub_size=4, stride=1,
            data_bytes_per_task=1e6,
        )
        t_spread = simulate_subcomm_alltoall(
            MIRA, nodes=4, tasks_per_node=4, sub_size=4, stride=4,
            data_bytes_per_task=1e6,
        )
        assert t_local < t_spread

    def test_matches_analytic_within_factor(self):
        """Off-node all-to-all: fluid vs closed form within ~3x (the closed
        form folds in fitted contention the fluid model idealizes)."""
        nodes, tpn, sub = 8, 4, 8
        data = 4e6
        t_sim = simulate_subcomm_alltoall(
            MIRA, nodes=nodes, tasks_per_node=tpn, sub_size=sub, stride=tpn,
            data_bytes_per_task=data,
        )
        analytic = TransposeCostModel(MIRA).transpose_time(
            comm_geometry(sub, stride=tpn, tasks_per_node=tpn),
            data,
            tpn,
            nodes,
        )
        assert 1 / 3 < t_sim / analytic < 3.0

    def test_scaling_with_node_count(self):
        """More nodes, same per-task data: per-node time falls (strong
        scaling of the transpose) until the fabric pool binds."""
        times = []
        for nodes in (2, 4, 8):
            times.append(
                simulate_subcomm_alltoall(
                    MIRA, nodes=nodes, tasks_per_node=4, sub_size=4 * nodes,
                    stride=1, data_bytes_per_task=8e6 / nodes,
                )
            )
        assert times[0] > times[1] > times[2]
