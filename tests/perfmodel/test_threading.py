"""Thread-scaling model tests (Tables 3-4)."""

import pytest

from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import LONESTAR, MIRA
from repro.perfmodel.threading import ThreadScalingModel


@pytest.fixture
def mira():
    return ThreadScalingModel(MIRA)


@pytest.fixture
def lonestar():
    return ThreadScalingModel(LONESTAR)


class TestComputeKernels:
    def test_physical_core_scaling_near_perfect(self, mira):
        """Table 3: up to 16 cores, speedup within a few % of linear."""
        for t in (2, 4, 8, 16):
            assert mira.compute_speedup(t) == pytest.approx(t, rel=0.06)

    def test_hw_threads_exceed_100pct_per_core(self, mira):
        """Table 3 Mira: 16x2 -> ~173-187%, 16x4 -> ~204-216% per core."""
        assert mira.compute_efficiency(32) > 1.6
        assert mira.compute_efficiency(64) > 1.9

    def test_matches_paper_table3_mira(self, mira):
        for threads, (fft, adv) in P.TABLE3_MIRA.items():
            model = mira.compute_speedup(threads)
            lo, hi = min(fft, adv), max(fft, adv)
            assert 0.85 * lo < model < 1.15 * hi, threads

    def test_lonestar_socket_scaling(self, lonestar):
        for cores, (fft, adv) in P.TABLE3_LONESTAR.items():
            model = lonestar.compute_speedup(cores)
            assert model == pytest.approx((fft + adv) / 2, rel=0.2)

    def test_too_many_threads_raises(self, mira):
        with pytest.raises(ValueError):
            mira.compute_speedup(128)  # > 16 cores x 4 HW threads

    def test_invalid_thread_count(self, mira):
        with pytest.raises(ValueError):
            mira.compute_speedup(0)


class TestReorderKernel:
    def test_linear_at_low_threads(self, mira):
        """Table 4: 2 and 4 threads track the per-thread bandwidth."""
        assert mira.reorder_bytes_per_cycle(2) == pytest.approx(3.8, rel=0.05)
        assert mira.reorder_bytes_per_cycle(4) == pytest.approx(7.6, rel=0.05)

    def test_saturates_near_paper_ceiling(self, mira):
        """Table 4 peaks at 16.1 B/cycle around 16 threads."""
        peak = max(mira.reorder_bytes_per_cycle(t) for t in (8, 16, 32))
        assert 13.0 < peak < 17.0

    def test_rise_then_fall(self, mira):
        """Contention beyond saturation lowers throughput (Table 4)."""
        b16 = mira.reorder_bytes_per_cycle(16)
        b64 = mira.reorder_bytes_per_cycle(64)
        assert b64 < b16

    def test_speedup_well_below_compute_kernels(self, mira):
        """Table 4 vs Table 3: reorder caps at ~6x, compute reaches ~16x."""
        assert mira.reorder_speedup(16) < 0.6 * mira.compute_speedup(16)

    def test_invalid_thread_count(self, mira):
        with pytest.raises(ValueError):
            mira.reorder_bandwidth_fraction(0)

    def test_fraction_never_exceeds_one(self, mira):
        for t in range(1, 65):
            assert mira.reorder_bandwidth_fraction(t) <= 1.0
