"""Parallel FFT benchmark model tests (Table 6 golden shapes)."""

import pytest

from repro.perfmodel import paper_data as P
from repro.perfmodel.fftbench import ParallelFFTModel
from repro.perfmodel.machine import LONESTAR, MIRA, STAMPEDE


@pytest.fixture
def mira_small():
    return ParallelFFTModel(MIRA, 2048, 1024, 1024)


@pytest.fixture
def lonestar():
    return ParallelFFTModel(LONESTAR, 768, 768, 768)


class TestCycleTime:
    def test_components_positive(self, mira_small):
        c = mira_small.cycle_time(128, "custom")
        assert c.fft > 0 and c.transpose > 0 and c.reorder > 0
        assert c.total == pytest.approx(c.fft + c.transpose + c.reorder)

    def test_unknown_kernel(self, mira_small):
        with pytest.raises(ValueError):
            mira_small.cycle_time(128, "fftw")


class TestMiraShape:
    def test_custom_always_wins_on_mira(self, mira_small):
        """Table 6 Mira: the customized kernel wins at every core count."""
        for cores in P.TABLE6_MIRA_SMALL:
            p3 = mira_small.cycle_time(cores, "p3dfft").total
            cu = mira_small.cycle_time(cores, "custom").total
            assert p3 > 1.3 * cu, cores

    def test_ratio_magnitude(self, mira_small):
        """Paper sees 2.1-2.6x; the model must land in the same regime."""
        for cores in (256, 1024, 8192):
            p3 = mira_small.cycle_time(cores, "p3dfft").total
            cu = mira_small.cycle_time(cores, "custom").total
            assert 1.5 < p3 / cu < 3.5

    def test_custom_superscaling_mechanism(self, mira_small):
        """§4.4's conjecture: per-core reorder gets cheaper as local blocks
        shrink, so custom scaled efficiency can exceed 100%."""
        t128 = mira_small.cycle_time(128, "custom").total
        t1024 = mira_small.cycle_time(1024, "custom").total
        efficiency = (t128 * 128) / (t1024 * 1024)
        # the paper measures > 1.15; the model keeps most of the effect
        assert efficiency > 0.8

    def test_absolute_times_within_2x(self, mira_small):
        for cores, (p3, cu) in P.TABLE6_MIRA_SMALL.items():
            assert 0.4 < mira_small.cycle_time(cores, "custom").total / cu < 2.0
            assert 0.4 < mira_small.cycle_time(cores, "p3dfft").total / p3 < 2.0

    def test_large_grid_ratio(self):
        fm = ParallelFFTModel(MIRA, 18432, 12288, 12288)
        for cores, (p3, cu) in P.TABLE6_MIRA_LARGE.items():
            if p3 is None:
                continue
            r = fm.cycle_time(cores, "p3dfft").total / fm.cycle_time(cores, "custom").total
            assert 1.1 < r < 2.2, cores


class TestIntelMachineCrossover:
    """Table 6 Lonestar/Stampede: P3DFFT wins small, custom wins at scale."""

    def test_lonestar_crossover(self, lonestar):
        small = lonestar.cycle_time(24, "p3dfft").total / lonestar.cycle_time(24, "custom").total
        large = lonestar.cycle_time(1536, "p3dfft").total / lonestar.cycle_time(
            1536, "custom"
        ).total
        assert small < 1.0  # P3DFFT faster at 24 cores
        assert large > 1.3  # custom much faster at 1536

    def test_stampede_crossover(self):
        fm = ParallelFFTModel(STAMPEDE, 1024, 1024, 1024)
        small = fm.cycle_time(64, "p3dfft").total / fm.cycle_time(64, "custom").total
        large = fm.cycle_time(4096, "p3dfft").total / fm.cycle_time(4096, "custom").total
        assert small < 1.0
        assert large > 1.3

    def test_p3dfft_sync_floor(self, lonestar):
        """The ~0.19 s flattening of P3DFFT on the IB machines at scale."""
        t768 = lonestar.cycle_time(768, "p3dfft").total
        t1536 = lonestar.cycle_time(1536, "p3dfft").total
        assert t1536 > 0.55 * t768  # far from halving


class TestMemoryAccounting:
    def test_p3dfft_needs_more_memory(self, mira_small):
        """Table 6's N/A rows: P3DFFT runs out of memory first."""
        for cores in (128, 1024):
            assert mira_small.memory_elements_per_task(
                cores, "p3dfft"
            ) * cores > mira_small.memory_elements_per_task(cores, "custom") * MIRA.nodes(cores)
