"""Parallel FFT kernel tests: custom (Nyquist-free) and P3DFFT baseline."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.transforms import to_quadrature_grid
from repro.mpi.simmpi import run_spmd
from repro.pencil.p3dfft import P3DFFTBaseline
from repro.pencil.parallel_fft import PencilTransforms

NX, NY, NZ = 16, 12, 16


def make_spectral(grid, seed=0):
    rng = np.random.default_rng(seed)
    spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
        grid.spectral_shape
    )
    spec[0, 0] = rng.standard_normal(grid.ny)
    half = grid.nz // 2
    for j in range(1, half):
        spec[0, grid.mz - j] = np.conj(spec[0, j])
    return spec


class TestCustomKernel:
    @pytest.mark.parametrize("pa,pb", [(1, 1), (2, 2), (4, 1), (1, 4), (2, 3)])
    def test_matches_serial_reference(self, pa, pb):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid)
        phys_ref = to_quadrature_grid(spec, grid)

        def prog(comm):
            cart = comm.cart_create((pa, pb))
            tr = PencilTransforms(cart, NX, NY, NZ, dealias=True)
            d = tr.decomp
            local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
            phys = tr.to_physical(local)
            ref = phys_ref[:, d.zq_slice, d.y_slice]
            assert np.abs(phys - ref).max() < 1e-12
            back = tr.from_physical(phys)
            assert np.abs(back - local).max() < 1e-12
            return True

        assert all(run_spmd(pa * pb, prog))

    def test_fft_cycle_identity_without_dealiasing(self):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid, seed=3)

        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ, dealias=False)
            d = tr.decomp
            local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
            out = tr.fft_cycle(local)
            assert np.abs(out - local).max() < 1e-12
            return True

        assert all(run_spmd(4, prog))

    def test_shape_validation(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ)
            with pytest.raises(ValueError):
                tr.to_physical(np.zeros((1, 1, 1), complex))
            comm.barrier()
            return True

        assert all(run_spmd(4, prog))

    def test_work_buffer_is_order_input(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ, dealias=False)
            return tr.work_buffer_elements() / tr.input_elements()

        ratios = run_spmd(4, prog)
        assert all(r <= 1.6 for r in ratios)  # ~1x (padding-free)

    def test_timers_populated(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ)
            d = tr.decomp
            tr.to_physical(np.zeros(d.y_pencil_shape, complex))
            return dict(tr.timers.elapsed)

        for elapsed in run_spmd(4, prog):
            assert elapsed["transpose"] > 0.0
            assert elapsed["fft"] > 0.0

    def test_planner_collective(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ)
            choices = tr.plan()
            assert set(choices) == {"CommA", "CommB"}
            return True

        assert all(run_spmd(4, prog))


class TestP3DFFTBaseline:
    def test_cycle_identity_with_nyquist_kept(self):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid, seed=5)
        half = NZ // 2
        full = np.zeros((NX // 2 + 1, NZ, NY), complex)
        full[: grid.mx, :half] = spec[:, :half]
        full[: grid.mx, half + 1 :] = spec[:, half:]

        def prog(comm):
            cart = comm.cart_create((2, 2))
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            d = p3.decomp
            local = np.ascontiguousarray(full[d.x_slice, d.z_spec_slice, :])
            out = p3.fft_cycle(local)
            assert np.abs(out - local).max() < 1e-12
            return True

        assert all(run_spmd(4, prog))

    def test_buffers_are_3x(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            return p3.work_buffer_elements() / p3.input_elements()

        assert all(r == 3.0 for r in run_spmd(4, prog))

    def test_transposes_carry_more_data_than_custom(self):
        """The Nyquist mode inflates P3DFFT's communication volume."""

        def prog(comm):
            cart = comm.cart_create((2, 2))
            custom = PencilTransforms(cart, NX, NY, NZ, dealias=False)
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            c_in = comm.allreduce(custom.input_elements())
            p_in = comm.allreduce(p3.input_elements())
            return c_in, p_in

        res = run_spmd(4, prog)
        c_in, p_in = res[0]
        assert p_in > c_in

    def test_no_planner(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            with pytest.raises(NotImplementedError):
                p3.plan()
            comm.barrier()
            return True

        assert all(run_spmd(4, prog))
