"""Parallel FFT kernel tests: custom (Nyquist-free) and P3DFFT baseline."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.transforms import to_quadrature_grid
from repro.mpi.simmpi import FaultEvent, FaultPlan, ShrinkRequired, run_spmd
from repro.pencil.decomp import choose_grid
from repro.pencil.p3dfft import P3DFFTBaseline
from repro.pencil.parallel_fft import PencilTransforms
from repro.pencil.transpose import ENV_METHOD, TransposeMethod

NX, NY, NZ = 16, 12, 16


def make_spectral(grid, seed=0):
    rng = np.random.default_rng(seed)
    spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
        grid.spectral_shape
    )
    spec[0, 0] = rng.standard_normal(grid.ny)
    half = grid.nz // 2
    for j in range(1, half):
        spec[0, grid.mz - j] = np.conj(spec[0, j])
    return spec


class TestCustomKernel:
    @pytest.mark.parametrize("pa,pb", [(1, 1), (2, 2), (4, 1), (1, 4), (2, 3)])
    def test_matches_serial_reference(self, pa, pb):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid)
        phys_ref = to_quadrature_grid(spec, grid)

        def prog(comm):
            cart = comm.cart_create((pa, pb))
            tr = PencilTransforms(cart, NX, NY, NZ, dealias=True)
            d = tr.decomp
            local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
            phys = tr.to_physical(local)
            ref = phys_ref[:, d.zq_slice, d.y_slice]
            assert np.abs(phys - ref).max() < 1e-12
            back = tr.from_physical(phys)
            assert np.abs(back - local).max() < 1e-12
            return True

        assert all(run_spmd(pa * pb, prog))

    def test_fft_cycle_identity_without_dealiasing(self):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid, seed=3)

        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ, dealias=False)
            d = tr.decomp
            local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
            out = tr.fft_cycle(local)
            assert np.abs(out - local).max() < 1e-12
            return True

        assert all(run_spmd(4, prog))

    def test_shape_validation(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ)
            with pytest.raises(ValueError):
                tr.to_physical(np.zeros((1, 1, 1), complex))
            comm.barrier()
            return True

        assert all(run_spmd(4, prog))

    def test_work_buffer_is_order_input(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ, dealias=False)
            return tr.work_buffer_elements() / tr.input_elements()

        ratios = run_spmd(4, prog)
        assert all(r <= 1.6 for r in ratios)  # ~1x (padding-free)

    def test_timers_populated(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ)
            d = tr.decomp
            tr.to_physical(np.zeros(d.y_pencil_shape, complex))
            return dict(tr.timers.elapsed)

        for elapsed in run_spmd(4, prog):
            assert elapsed["transpose"] > 0.0
            assert elapsed["fft"] > 0.0

    def test_planner_collective(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ)
            choices = tr.plan()
            assert set(choices) == {"CommA", "CommB"}
            return True

        assert all(run_spmd(4, prog))


def _pipelined_vs_sync(comm, pa, pb, seed=9):
    """Build both kernels on one cartesian grid and compare bitwise."""
    grid = ChannelGrid(NX, NY, NZ)
    spec = make_spectral(grid, seed=seed)
    cart = comm.cart_create((pa, pb))
    sync = PencilTransforms(cart, NX, NY, NZ, method=TransposeMethod.ALLTOALL)
    pipe = PencilTransforms(cart, NX, NY, NZ, method=TransposeMethod.PIPELINED)
    d = sync.decomp
    local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
    phys_s = sync.to_physical(local)
    phys_p = pipe.to_physical(local)
    np.testing.assert_array_equal(phys_p, phys_s)
    back_s = sync.from_physical(phys_s)
    back_p = pipe.from_physical(phys_p)
    np.testing.assert_array_equal(back_p, back_s)
    if comm.size > 1:
        # the exchanges really went through the nonblocking path
        assert pipe.overlap_counters.posts > 0
        assert pipe.overlap_counters.bytes_posted > 0
        assert sync.overlap_counters.posts == 0
    return True


class TestPipelinedKernel:
    """The pipelined (overlapped) transposes must be bit-for-bit."""

    @pytest.mark.parametrize("pa,pb", [(1, 4), (4, 1), (2, 2), (2, 3)])
    def test_bitwise_identical_to_synchronous(self, pa, pb):
        assert all(run_spmd(pa * pb, lambda comm: _pipelined_vs_sync(comm, pa, pb)))

    def test_bitwise_identical_on_shrunk_grid(self):
        """After a real mid-exchange ShrinkRequired, the survivor-count
        grid chosen by the elastic planner still runs pipelined bitwise."""
        plan = FaultPlan([FaultEvent(action="kill", rank=3, op="ialltoallv", call=2)])

        def doomed(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ, method=TransposeMethod.PIPELINED)
            local = np.zeros(tr.decomp.y_pencil_shape, complex)
            for _ in range(6):
                tr.to_physical(local)
            return True

        with pytest.raises(ShrinkRequired) as info:
            run_spmd(4, doomed, fault_plan=plan, elastic=True, timeout=60.0)
        survivors = info.value.survivors
        assert len(survivors) == 3
        pa, pb = choose_grid(len(survivors), NX // 2, NZ - 1, NY)
        assert all(
            run_spmd(
                len(survivors),
                lambda comm: _pipelined_vs_sync(comm, pa, pb, seed=13),
            )
        )

    def test_env_pin_plans_deterministically(self, monkeypatch):
        monkeypatch.setenv(ENV_METHOD, "pipelined")

        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, NX, NY, NZ)
            choices = tr.plan()
            assert choices == {
                "CommB": TransposeMethod.PIPELINED,
                "CommA": TransposeMethod.PIPELINED,
            }
            for t in (tr.t_yz, tr.t_zy, tr.t_zx, tr.t_xz):
                assert t.method is TransposeMethod.PIPELINED
            # the pin decided: nothing was measured anywhere
            assert tr.t_yz.measured == {} and tr.t_zx.measured == {}
            return True

        assert all(run_spmd(4, prog))

    def test_fft_cycle_identity_pipelined(self):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid, seed=3)

        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(
                cart, NX, NY, NZ, dealias=False, method=TransposeMethod.PIPELINED
            )
            d = tr.decomp
            local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
            out = tr.fft_cycle(local)
            assert np.abs(out - local).max() < 1e-12
            return True

        assert all(run_spmd(4, prog))


class TestP3DFFTBaseline:
    def test_cycle_identity_with_nyquist_kept(self):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid, seed=5)
        half = NZ // 2
        full = np.zeros((NX // 2 + 1, NZ, NY), complex)
        full[: grid.mx, :half] = spec[:, :half]
        full[: grid.mx, half + 1 :] = spec[:, half:]

        def prog(comm):
            cart = comm.cart_create((2, 2))
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            d = p3.decomp
            local = np.ascontiguousarray(full[d.x_slice, d.z_spec_slice, :])
            out = p3.fft_cycle(local)
            assert np.abs(out - local).max() < 1e-12
            return True

        assert all(run_spmd(4, prog))

    def test_buffers_are_3x(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            return p3.work_buffer_elements() / p3.input_elements()

        assert all(r == 3.0 for r in run_spmd(4, prog))

    def test_transposes_carry_more_data_than_custom(self):
        """The Nyquist mode inflates P3DFFT's communication volume."""

        def prog(comm):
            cart = comm.cart_create((2, 2))
            custom = PencilTransforms(cart, NX, NY, NZ, dealias=False)
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            c_in = comm.allreduce(custom.input_elements())
            p_in = comm.allreduce(p3.input_elements())
            return c_in, p_in

        res = run_spmd(4, prog)
        c_in, p_in = res[0]
        assert p_in > c_in

    def test_no_planner(self):
        def prog(comm):
            cart = comm.cart_create((2, 2))
            p3 = P3DFFTBaseline(cart, NX, NY, NZ)
            with pytest.raises(NotImplementedError):
                p3.plan()
            comm.barrier()
            return True

        assert all(run_spmd(4, prog))
