"""Global transpose and on-node reorder tests."""

import numpy as np
import pytest

from repro.mpi.simmpi import run_spmd
from repro.pencil.decomp import block_range
from repro.pencil.reorder import chunked_reorder, reorder
from repro.pencil.transpose import (
    ENV_METHOD,
    MAX_POOL_ENTRIES,
    GlobalTranspose,
    TransposeMethod,
)


class TestReorder:
    def test_default_permutation(self, rng):
        a = rng.standard_normal((3, 4, 5))
        out, nbytes = reorder(a)
        np.testing.assert_array_equal(out, np.transpose(a, (1, 2, 0)))
        assert out.flags.c_contiguous
        assert nbytes == 2 * a.nbytes

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            reorder(np.zeros((2, 2)))

    @pytest.mark.parametrize("nchunks", [1, 2, 4, 16])
    def test_chunked_matches_plain(self, rng, nchunks):
        a = rng.standard_normal((6, 5, 4))
        plain, _ = reorder(a)
        chunked, _ = chunked_reorder(a, nchunks=nchunks)
        np.testing.assert_array_equal(chunked, plain)


def roundtrip_program(method):
    def prog(comm):
        rng = np.random.default_rng(comm.rank)
        n_split, n_other = 8, 5
        lo, hi = block_range(12, comm.size, comm.rank)
        a = rng.standard_normal((n_split, n_other, hi - lo))
        fwd = GlobalTranspose(comm, split_axis=0, concat_axis=2, method=method)
        bwd = GlobalTranspose(comm, split_axis=2, concat_axis=0, method=method)
        moved = fwd.execute(a)
        # moved: axis 0 is now the local block of 8, axis 2 gathered to 12
        s0, e0 = block_range(n_split, comm.size, comm.rank)
        assert moved.shape == (e0 - s0, n_other, 12)
        back = bwd.execute(moved)
        np.testing.assert_allclose(back, a, atol=1e-14)
        return True

    return prog


class TestGlobalTranspose:
    @pytest.mark.parametrize("method", list(TransposeMethod))
    @pytest.mark.parametrize("nranks", [2, 3, 4])
    def test_roundtrip(self, method, nranks):
        assert all(run_spmd(nranks, roundtrip_program(method)))

    def test_methods_agree(self):
        def prog(comm):
            rng = np.random.default_rng(7)
            lo, hi = block_range(9, comm.size, comm.rank)
            a = rng.standard_normal((6, hi - lo)).reshape(6, 1, hi - lo)
            a = a + comm.rank  # distinct per rank
            t1 = GlobalTranspose(comm, 0, 2, method=TransposeMethod.ALLTOALL)
            t2 = GlobalTranspose(comm, 0, 2, method=TransposeMethod.PAIRWISE)
            np.testing.assert_array_equal(t1.execute(a), t2.execute(a))
            return True

        assert all(run_spmd(3, prog))

    def test_explicit_split_sizes(self):
        def prog(comm):
            sizes = [3, 1]  # deliberately unequal
            a = np.arange(4.0 * 2).reshape(4, 1, 2)
            t = GlobalTranspose(comm, 0, 2, split_sizes=sizes)
            out = t.execute(a)
            assert out.shape[0] == sizes[comm.rank]
            return True

        assert all(run_spmd(2, prog))

    def test_bad_split_sizes(self):
        def prog(comm):
            t = GlobalTranspose(comm, 0, 2, split_sizes=[1, 1])
            with pytest.raises(ValueError):
                t.execute(np.zeros((5, 1, 2)))
            comm.barrier()
            return True

        assert all(run_spmd(2, prog))

    def test_pipelined_bitwise_identical_to_alltoall(self):
        def prog(comm):
            rng = np.random.default_rng(11)
            lo, hi = block_range(9, comm.size, comm.rank)
            a = rng.standard_normal((6, 7, hi - lo)) + comm.rank
            sync = GlobalTranspose(comm, 0, 2, method=TransposeMethod.ALLTOALL)
            pipe = GlobalTranspose(comm, 0, 2, method=TransposeMethod.PIPELINED)
            np.testing.assert_array_equal(pipe.execute(a), sync.execute(a))
            return True

        assert all(run_spmd(3, prog))

    @pytest.mark.parametrize("method", list(TransposeMethod))
    def test_staging_allocations_freeze(self, method):
        """Persistent staging: repeated executes allocate no new workspace."""

        def prog(comm):
            lo, hi = block_range(10, comm.size, comm.rank)
            a = np.arange(8.0 * 3 * (hi - lo)).reshape(8, 3, hi - lo)
            t = GlobalTranspose(comm, 0, 2, method=method)
            first = t.execute(a)
            allocs, byts = t.staging_allocs, t.staging_bytes
            assert allocs > 0
            for _ in range(5):
                np.testing.assert_array_equal(t.execute(a), first)
            assert (t.staging_allocs, t.staging_bytes) == (allocs, byts)
            return True

        assert all(run_spmd(4, prog))

    def test_staging_pool_is_lru_bounded(self):
        """Shape churn beyond the cap evicts oldest entries, keeps live
        bytes bounded, and never corrupts results (allocation discipline)."""

        def prog(comm):
            t = GlobalTranspose(comm, 0, 2)
            nshapes = 2 * MAX_POOL_ENTRIES
            inputs, outputs = [], []
            for i in range(nshapes):
                lo, hi = block_range(4 + i, comm.size, comm.rank)
                a = np.arange(8.0 * (2 + i) * (hi - lo)).reshape(8, 2 + i, hi - lo)
                inputs.append(a)
                outputs.append(t.execute(a))
            assert t.staging_evictions > 0
            assert len(t._staging) <= MAX_POOL_ENTRIES
            # live bytes track the pool, not the cumulative churn
            live = sum(
                v.nbytes for pair in t._staging.values() for views in pair for v in views
            )
            assert t.staging_bytes == live
            assert t.staging_allocs >= nshapes  # cumulative, monotone
            # re-executing every shape (including evicted ones) stays correct
            for a, out in zip(inputs, outputs):
                np.testing.assert_array_equal(t.execute(a), out)
            return True

        assert all(run_spmd(2, prog))

    def test_pipelined_slab_pool_is_lru_bounded(self):
        def prog(comm):
            t = GlobalTranspose(comm, 0, 2, method=TransposeMethod.PIPELINED)
            for i in range(2 * MAX_POOL_ENTRIES):
                lo, hi = block_range(4 + i, comm.size, comm.rank)
                a = np.arange(8.0 * (2 + i) * (hi - lo)).reshape(8, 2 + i, hi - lo)
                ref = GlobalTranspose(comm, 0, 2).execute(a)
                np.testing.assert_array_equal(t.execute(a), ref)
            assert t.staging_evictions > 0
            assert len(t.pipelined._slab_buffers) <= MAX_POOL_ENTRIES
            return True

        assert all(run_spmd(2, prog))

    def test_repeated_shape_never_evicts(self):
        """The steady-state single-shape hot loop keeps its freeze contract."""

        def prog(comm):
            lo, hi = block_range(10, comm.size, comm.rank)
            a = np.arange(8.0 * 3 * (hi - lo)).reshape(8, 3, hi - lo)
            t = GlobalTranspose(comm, 0, 2)
            for _ in range(3 * MAX_POOL_ENTRIES):
                t.execute(a)
            assert t.staging_evictions == 0
            return True

        assert all(run_spmd(2, prog))

    def test_pipelined_hooks_fuse_compute(self):
        """pre scales before posting; post scales after assembly."""

        def prog(comm):
            rng = np.random.default_rng(5)
            lo, hi = block_range(8, comm.size, comm.rank)
            a = rng.standard_normal((4, 3, hi - lo))
            t = GlobalTranspose(comm, 0, 2, method=TransposeMethod.PIPELINED)
            ref = GlobalTranspose(comm, 0, 2).execute(a)
            via_pre = t.pipelined.execute(a, pre=lambda s, k: 2.0 * s)
            np.testing.assert_array_equal(via_pre, 2.0 * ref)
            via_post = t.pipelined.execute(a, post=lambda s, k: 3.0 * s)
            np.testing.assert_array_equal(via_post, 3.0 * ref)
            return True

        assert all(run_spmd(2, prog))

    def test_env_pin_skips_measurement(self, monkeypatch):
        monkeypatch.setenv(ENV_METHOD, "pairwise_sendrecv")

        def prog(comm):
            lo, hi = block_range(8, comm.size, comm.rank)
            t = GlobalTranspose(comm, 0, 2)
            choice = t.plan(np.zeros((8, 2, hi - lo)))
            assert choice is TransposeMethod.PAIRWISE
            assert t.measured == {}  # nothing was measured: the pin decided
            return True

        assert all(run_spmd(4, prog))

    def test_planner_picks_and_pins(self):
        def prog(comm):
            lo, hi = block_range(8, comm.size, comm.rank)
            t = GlobalTranspose(comm, 0, 2)
            probe = np.zeros((8, 2, hi - lo))
            choice = t.plan(probe)
            assert choice in list(TransposeMethod)
            assert t.method is choice
            assert len(t.measured) == 3
            # choices must agree across ranks (collective measurement)
            choices = comm.allgather(choice)
            assert len(set(choices)) == 1
            return True

        assert all(run_spmd(4, prog))
