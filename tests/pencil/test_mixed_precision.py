"""Mixed-precision transpose wire: float32 payloads, float64 results.

The contract (DESIGN.md section 6h): ``wire="mixed"`` down-casts
transpose payloads to float32/complex64 for the exchange only —
staging buffers are allocated at the wire dtype, assembly up-casts back
into float64 accumulation — so results match the full-precision oracle
to single-precision tolerance (~1e-6 relative per cast) while moving
half the bytes.  The mode composes with CRC envelopes, fault injection
and elastic shrink because the narrowed views are ordinary payloads to
the communication layer.
"""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.grid import ChannelGrid
from repro.instrument import PrecisionCounters
from repro.mpi.simmpi import FaultEvent, FaultPlan, run_spmd
from repro.pencil.decomp import block_range
from repro.pencil.parallel_fft import PencilTransforms
from repro.pencil.transpose import GlobalTranspose, TransposeMethod

#: documented single-precision tolerance for a short mixed-wire trajectory
MIXED_RTOL = 1e-5


def _roundtrip_prog(method, dtype):
    def prog(comm):
        rng = np.random.default_rng(comm.rank)
        lo, hi = block_range(12, comm.size, comm.rank)
        a = rng.standard_normal((8, 5, hi - lo)).astype(dtype)
        if np.issubdtype(dtype, np.complexfloating):
            a = a + 1j * rng.standard_normal((8, 5, hi - lo))
        pc = PrecisionCounters()
        mixed = GlobalTranspose(comm, 0, 2, method=method, wire="mixed", precision=pc)
        full = GlobalTranspose(comm, 0, 2, method=method)
        out_m, out_f = mixed.execute(a), full.execute(a)
        assert out_m.dtype == out_f.dtype == dtype  # accumulation stays wide
        scale = max(float(np.abs(out_f).max()), 1e-30)
        rel = float(np.abs(out_m - out_f).max()) / scale
        assert rel < 1e-6, f"mixed wire off by {rel:.2e} relative"
        assert pc.exchanges > 0 and pc.casts == pc.exchanges
        assert pc.bytes_wire <= 0.55 * pc.bytes_full
        assert pc.wire_fraction() == pytest.approx(0.5)
        return True

    return prog


class TestMixedWire:
    @pytest.mark.parametrize("method", list(TransposeMethod))
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_matches_full_precision_oracle(self, method, dtype):
        assert all(run_spmd(4, _roundtrip_prog(method, dtype)))

    def test_narrow_dtypes_pass_through(self):
        """float32 input is already at wire width: no cast, no extra bytes."""

        def prog(comm):
            lo, hi = block_range(8, comm.size, comm.rank)
            a = np.arange(6.0 * 2 * (hi - lo), dtype=np.float32).reshape(6, 2, hi - lo)
            pc = PrecisionCounters()
            t = GlobalTranspose(comm, 0, 2, wire="mixed", precision=pc)
            out = t.execute(a)
            assert out.dtype == np.float32
            assert pc.casts == 0 and pc.bytes_wire == pc.bytes_full
            return True

        assert all(run_spmd(2, prog))

    def test_rejects_unknown_wire_mode(self):
        def prog(comm):
            with pytest.raises(ValueError):
                GlobalTranspose(comm, 0, 2, wire="float16")
            comm.barrier()
            return True

        assert all(run_spmd(2, prog))

    def test_composes_with_crc_integrity(self):
        """CRC envelopes checksum the narrowed payloads — no conflict."""
        assert all(
            run_spmd(4, _roundtrip_prog(TransposeMethod.PIPELINED, np.float64), integrity=True)
        )

    def test_composes_with_fault_injection(self):
        """A delayed mixed-wire exchange still lands bit-correctly."""
        plan = FaultPlan(
            [FaultEvent("delay", rank=r, op="ialltoallv", call=0, delay=0.005) for r in range(4)]
        )
        assert all(
            run_spmd(4, _roundtrip_prog(TransposeMethod.PIPELINED, np.complex128), fault_plan=plan)
        )


class TestMixedFFTCycle:
    def test_fft_cycle_close_to_full_precision(self):
        nx, ny, nz = 32, 16, 32
        grid = ChannelGrid(nx, ny, nz)
        rng = np.random.default_rng(0)
        spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
            grid.spectral_shape
        )

        def cyc(wire):
            def prog(comm):
                cart = comm.cart_create((2, 2))
                tr = PencilTransforms(cart, nx, ny, nz, dealias=False, wire=wire)
                d = tr.decomp
                loc = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
                out = tr.fft_cycle(loc)
                return out, tr.precision_counters.snapshot()

            return run_spmd(4, prog)

        full, mixed = cyc("full"), cyc("mixed")
        for (of, _), (om, pc) in zip(full, mixed):
            assert om.dtype == of.dtype == np.complex128
            rel = np.max(np.abs(om - of)) / max(np.max(np.abs(of)), 1e-30)
            assert rel < MIXED_RTOL
            assert pc["bytes_wire"] <= 0.55 * pc["bytes_full"]

    def test_full_wire_stays_bit_identical(self):
        """The default mode must not pay (or gain) anything from this PR."""
        nx, ny, nz = 16, 8, 16
        grid = ChannelGrid(nx, ny, nz)
        rng = np.random.default_rng(3)
        spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
            grid.spectral_shape
        )

        def prog(comm):
            cart = comm.cart_create((2, 2))
            tr = PencilTransforms(cart, nx, ny, nz, dealias=False, wire="full")
            d = tr.decomp
            loc = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
            out = tr.fft_cycle(loc)
            pc = tr.precision_counters
            assert pc.casts == 0 and pc.bytes_wire == pc.bytes_full
            return out

        r1, r2 = run_spmd(4, prog), run_spmd(4, prog)
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)


class TestMixedTrajectory:
    def test_distributed_dns_matches_serial_within_tolerance(self):
        """A short mixed-wire DNS trajectory vs the serial float64 oracle."""
        from repro.pencil.distributed import DistributedChannelDNS

        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)
        serial = ChannelDNS(cfg)
        serial.initialize()
        serial.run(4)

        def prog(comm):
            d = DistributedChannelDNS(comm, cfg, pa=2, pb=2, wire_precision="mixed")
            d.initialize()
            d.run(4)
            return d.gather_state()

        full = run_spmd(4, prog)[0]
        for name in ("v", "omega_y", "u00", "w00"):
            a, b = getattr(full, name), getattr(serial.state, name)
            scale = max(float(np.abs(b).max()), 1e-30)
            rel = float(np.abs(a - b).max()) / scale
            assert rel < MIXED_RTOL, f"{name} off by {rel:.2e} relative"
