"""Distributed DNS integration tests: parity with the serial solver."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.mpi.simmpi import run_spmd
from repro.pencil.distributed import DistributedChannelDNS

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)


@pytest.fixture(scope="module")
def serial_after_3():
    dns = ChannelDNS(CFG)
    dns.initialize()
    dns.run(3)
    return dns.state


class TestParity:
    @pytest.mark.parametrize("pa,pb", [(2, 2), (4, 1), (1, 4)])
    def test_trajectory_matches_serial(self, serial_after_3, pa, pb):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=pa, pb=pb)
            dns.initialize()
            dns.run(3)
            return dns.gather_state()

        full = run_spmd(pa * pb, prog)[0]
        np.testing.assert_allclose(full.v, serial_after_3.v, atol=1e-13)
        np.testing.assert_allclose(full.omega_y, serial_after_3.omega_y, atol=1e-13)
        np.testing.assert_allclose(full.u00, serial_after_3.u00, atol=1e-13)

    def test_divergence_free(self):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(2)
            return dns.divergence_norm()

        for div in run_spmd(4, prog):
            assert div < 1e-10

    def test_cfl_is_global(self):
        """Every rank reports the same (global) CFL number."""

        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(1)
            return dns.cfl_number()

        cfls = run_spmd(4, prog)
        assert len(set(cfls)) == 1
        assert 0 < cfls[0] < 1


class TestConstruction:
    def test_bad_process_grid(self):
        def prog(comm):
            with pytest.raises(ValueError):
                DistributedChannelDNS(comm, CFG, pa=3, pb=2)
            comm.barrier()
            return True

        assert all(run_spmd(4, prog))

    def test_step_before_initialize(self):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=1)
            with pytest.raises(RuntimeError):
                dns.step()
            comm.barrier()
            return True

        assert all(run_spmd(2, prog))

    def test_only_one_rank_owns_mean(self):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            return dns.modes.owns_mean

        owners = run_spmd(4, prog)
        assert sum(owners) == 1

    def test_timers_record_sections(self):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(1)
            return dict(dns.timers.elapsed)

        for elapsed in run_spmd(4, prog):
            assert elapsed["transpose"] > 0
            assert elapsed["fft"] > 0
            assert elapsed["ns_advance"] > 0
