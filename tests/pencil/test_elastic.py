"""Elastic recovery tests: grid re-planning, resharding restore, shrink identity.

The distributed acceptance property: a run killed at rank ``r`` mid-step
shrinks to ``P-1`` survivors, restores from the sharded snapshot via the
resharding reader, and lands bit-for-bit on a fresh ``P-1`` run started
from that snapshot — pinned for a ``2x2 -> 1x3`` shrink and for the
shrink to serial ``1x1``.
"""

import shutil

import numpy as np
import pytest

from repro.core import ChannelConfig
from repro.core.checkpoint import ShardedCheckpointRotation
from repro.instrument import RecoveryCounters, SectionTimers
from repro.mpi.pool import LeaseGrowSource, RankPool
from repro.mpi.simmpi import (
    FaultEvent,
    FaultPlan,
    PreemptRequired,
    ShrinkRequired,
    run_spmd,
)
from repro.mpi.topology import factor_pairs
from repro.pencil.decomp import choose_grid
from repro.pencil.distributed import DistributedChannelDNS, run_supervised_spmd

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)
MX, MZ = CFG.nx // 2, CFG.nz - 1  # 8 spectral-x, 15 spectral-z modes


class TestChooseGrid:
    def test_factor_pairs_enumerates_all(self):
        assert factor_pairs(12) == [(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]
        assert factor_pairs(1) == [(1, 1)]
        with pytest.raises(ValueError, match="cannot factor"):
            factor_pairs(0)

    def test_most_square_grid_wins(self):
        assert choose_grid(4, MX, MZ, CFG.ny) == (2, 2)
        assert choose_grid(1, MX, MZ, CFG.ny) == (1, 1)

    def test_tie_prefers_larger_pb(self):
        # 6 = 2x3 or 3x2, equally square; CommB node-locality (Table 5)
        # prefers the larger inner communicator
        assert choose_grid(6, MX, MZ, CFG.ny) == (2, 3)

    def test_extent_constraints_filter_candidates(self):
        # mx=2 caps pa at 2, so the most-square 3x4/4x3 grids are invalid
        assert choose_grid(12, 2, 12, 12, nzq=12) == (2, 6)

    def test_no_valid_grid_raises(self):
        with pytest.raises(ValueError, match="no valid"):
            choose_grid(7, 3, 3, 3)


def _write_snapshot(tmp_path, pa, pb, steps=3):
    """Write one sharded snapshot at the given grid; return the full state."""

    def prog(comm):
        dns = DistributedChannelDNS(comm, CFG, pa=pa, pb=pb)
        dns.initialize()
        dns.run(steps)
        ShardedCheckpointRotation(tmp_path).save(dns)
        return dns.gather_state()

    return run_spmd(pa * pb, prog)[0]


class TestReshardRestore:
    @pytest.mark.parametrize(
        "old,new",
        [((2, 2), (1, 3)), ((2, 2), (4, 1)), ((1, 3), (2, 2)), ((2, 2), (1, 1))],
    )
    def test_reshard_roundtrip_is_bit_exact(self, tmp_path, old, new):
        ref = _write_snapshot(tmp_path, *old)

        counters = RecoveryCounters()

        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=new[0], pb=new[1])
            rot = ShardedCheckpointRotation(tmp_path, counters=counters)
            rot.load_latest(dns, reshard=True)
            assert dns.step_count == 3
            return dns.gather_state()

        full = run_spmd(new[0] * new[1], prog)[0]
        assert counters.reshard_restores == new[0] * new[1]
        np.testing.assert_array_equal(full.v, ref.v)
        np.testing.assert_array_equal(full.omega_y, ref.omega_y)
        np.testing.assert_array_equal(full.u00, ref.u00)
        np.testing.assert_array_equal(full.w00, ref.w00)
        assert full.time == ref.time

    def test_same_layout_with_reshard_flag_stays_fast_path(self, tmp_path):
        ref = _write_snapshot(tmp_path, 2, 2)
        counters = RecoveryCounters()

        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            rot = ShardedCheckpointRotation(tmp_path, counters=counters)
            rot.load_latest(dns, reshard=True)
            return dns.gather_state()

        full = run_spmd(4, prog)[0]
        assert counters.reshard_restores == 0  # same layout: no reshard counted
        np.testing.assert_array_equal(full.v, ref.v)

    def test_load_serial_reassembles_full_state(self, tmp_path):
        ref = _write_snapshot(tmp_path, 2, 2)
        dns = ShardedCheckpointRotation(tmp_path).load_serial()
        assert dns.step_count == 3
        np.testing.assert_array_equal(dns.state.v, ref.v)
        np.testing.assert_array_equal(dns.state.omega_y, ref.omega_y)
        np.testing.assert_array_equal(dns.state.u00, ref.u00)
        np.testing.assert_array_equal(dns.state.w00, ref.w00)
        # and it keeps integrating: the serial continuation matches the
        # distributed one to round-off
        def cont(comm):
            d = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            ShardedCheckpointRotation(tmp_path).load_latest(d)
            d.run(2)
            return d.gather_state()

        dist = run_spmd(4, cont)[0]
        dns.run(2)
        np.testing.assert_allclose(dns.state.v, dist.v, rtol=0, atol=1e-12)


class TestElasticShrinkIdentity:
    """THE elastic acceptance criterion, for two (A,B) -> (A',B') transitions."""

    @pytest.mark.parametrize(
        "nranks,pa,pb",
        [(4, 2, 2), (2, 2, 1)],  # 2x2 -> 1x3, and 2x1 -> serial 1x1
    )
    def test_degraded_run_matches_fresh_run_at_survivor_count(
        self, tmp_path, nranks, pa, pb
    ):
        """Kill rank 1 inside a pencil-transpose alltoall mid-run: the
        elastic supervisor shrinks to the agreed survivors, re-plans the
        grid, reshard-restores, and the final state is bit-for-bit a
        fresh run at the survivor count started from the same snapshot."""
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        counters = RecoveryCounters()
        timers = SectionTimers()
        final, log = run_supervised_spmd(
            nranks,
            CFG,
            pa=pa,
            pb=pb,
            n_steps=10,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
            fault_plans=[plan],
            counters=counters,
            elastic=True,
            integrity=True,
            timers=timers,
        )

        assert plan.triggered  # the kill really fired
        assert counters.shrinks == 1 and counters.restarts == 0
        assert counters.reshard_restores >= 1
        assert timers.elapsed[SectionTimers.ELASTIC] > 0
        shrink = [e for e in log if e.kind == "shrink"][0]
        nsurv = shrink.info["ranks"]
        assert nsurv == nranks - 1
        new_pa, new_pb = shrink.info["pa"], shrink.info["pb"]
        assert (new_pa, new_pb) == choose_grid(nsurv, MX, MZ, CFG.ny)

        # rewind the rotation to the step-5 snapshot and launch a *fresh*
        # run at the survivor grid from it — must land on the same bits
        shutil.rmtree(tmp_path / "step-000000010")
        (tmp_path / "latest").write_text("step-000000005")

        def fresh(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=new_pa, pb=new_pb)
            ShardedCheckpointRotation(tmp_path).load_latest(dns, reshard=True)
            assert dns.step_count == 5
            while dns.step_count < 10:
                dns.step()
            return dns.gather_state()

        fresh_full = run_spmd(nsurv, fresh)[0]
        np.testing.assert_array_equal(final.v, fresh_full.v)
        np.testing.assert_array_equal(final.omega_y, fresh_full.omega_y)
        np.testing.assert_array_equal(final.u00, fresh_full.u00)
        np.testing.assert_array_equal(final.w00, fresh_full.w00)
        assert final.time == fresh_full.time

    def test_min_ranks_bounds_degradation(self, tmp_path):
        """A shrink below min_ranks propagates the ShrinkRequired."""
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        with pytest.raises(ShrinkRequired):
            run_supervised_spmd(
                4,
                CFG,
                pa=2,
                pb=2,
                n_steps=10,
                checkpoint_dir=tmp_path,
                checkpoint_every=5,
                fault_plans=[plan],
                elastic=True,
                min_ranks=4,
            )

    def test_non_elastic_supervisor_unchanged(self, tmp_path):
        """Without elastic=True the same kill takes the classic
        same-size restart path (PR-3 behavior preserved)."""
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        counters = RecoveryCounters()
        final, log = run_supervised_spmd(
            4,
            CFG,
            pa=2,
            pb=2,
            n_steps=10,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
            fault_plans=[plan],
            counters=counters,
        )
        assert [e.kind for e in log] == ["restart"]
        assert counters.restarts == 1 and counters.shrinks == 0
        assert np.all(np.isfinite(final.v))


def _uninterrupted(nranks, pa, pb, n_steps):
    """Full state of a fresh, fault-free run at the given grid."""

    def prog(comm):
        dns = DistributedChannelDNS(comm, CFG, pa=pa, pb=pb)
        dns.initialize()
        dns.run(n_steps)
        return dns.gather_state()

    return run_spmd(nranks, prog)[0]


class TestElasticGrowIdentity:
    """THE expansion acceptance criterion: a degraded run grown back to
    its original rank count is bit-identical to an uninterrupted run."""

    @pytest.mark.parametrize(
        "nranks,pa,pb",
        [(4, 2, 2), (2, 2, 1)],  # 4 -> 3 -> 4, and 2 -> serial 1 -> 2
    )
    def test_collapse_then_expansion_is_bit_identical(self, tmp_path, nranks, pa, pb):
        """Kill a rank mid-run (shrink), return it through the quarantine
        probe, and let the supervisor grow back at the next checkpoint
        boundary: shrink -> grow in the recovery log, and the final
        trajectory lands on the uninterrupted run's exact bits."""
        pool = RankPool(nranks)
        pool.acquire("job", nranks)
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        counters = RecoveryCounters()
        timers = SectionTimers()
        final, log = run_supervised_spmd(
            nranks,
            CFG,
            pa=pa,
            pb=pb,
            n_steps=15,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
            fault_plans=[plan],
            counters=counters,
            elastic=True,
            integrity=True,
            timers=timers,
            grow_source=LeaseGrowSource(pool, "job", prober=lambda r: True),
            on_shrink=lambda dead, surv: pool.shrink("job", dead),
        )

        assert plan.triggered
        assert counters.shrinks == 1 and counters.grows == 1
        assert counters.restarts == 0  # neither move consumed the budget
        kinds = [e.kind for e in log]
        assert kinds == ["shrink", "grow"]
        grow = log[1]
        assert grow.info["ranks"] == nranks
        assert (grow.info["pa"], grow.info["pb"]) == choose_grid(
            nranks, MX, MZ, CFG.ny
        )
        # the pool saw the full cycle: quarantine emptied, lease back to size
        assert pool.quarantined_ranks() == ()
        assert pool.lease("job").size == nranks

        ref = _uninterrupted(nranks, *choose_grid(nranks, MX, MZ, CFG.ny), 15)
        np.testing.assert_array_equal(final.v, ref.v)
        np.testing.assert_array_equal(final.omega_y, ref.omega_y)
        np.testing.assert_array_equal(final.u00, ref.u00)
        np.testing.assert_array_equal(final.w00, ref.w00)
        assert final.time == ref.time

    def test_growth_capped_at_original_request(self, tmp_path):
        """A healthy run never grows past its requested world size even
        when the pool has plenty of free ranks."""
        pool = RankPool(8)
        pool.acquire("job", 2)
        counters = RecoveryCounters()
        final, log = run_supervised_spmd(
            2,
            CFG,
            pa=2,
            pb=1,
            n_steps=10,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
            counters=counters,
            elastic=True,
            grow_source=LeaseGrowSource(pool, "job"),
        )
        assert log == [] and counters.grows == 0
        assert pool.lease("job").size == 2
        assert np.all(np.isfinite(final.v))

    def test_lost_claim_race_resumes_at_current_size(self, tmp_path):
        """When the free ranks vanish between probe and commit the job
        simply continues degraded — no event, no error."""
        pool = RankPool(4)
        pool.acquire("job", 2)

        class RacingSource(LeaseGrowSource):
            def claim(self, n):
                # a rival job grabs the free ranks right before our commit
                if pool.free_count() >= 2:
                    pool.acquire("rival", 2)
                return super().claim(n)

        counters = RecoveryCounters()
        final, log = run_supervised_spmd(
            4,
            CFG,
            pa=2,
            pb=2,
            n_steps=15,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
            fault_plans=[
                FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
            ],
            counters=counters,
            elastic=True,
            grow_source=RacingSource(pool, "job"),
            on_shrink=lambda dead, surv: pool.shrink("job", dead),
        )
        assert counters.shrinks == 1 and counters.grows == 0
        assert [e.kind for e in log] == ["shrink"]
        assert np.all(np.isfinite(final.v))


class TestPreemption:
    def test_preempt_checkpoints_then_raises(self, tmp_path):
        """A stop request fires at the next checkpoint boundary, after the
        snapshot landed: the typed PreemptRequired carries the step, and
        the rotation's newest snapshot is exactly that step."""
        with pytest.raises(PreemptRequired) as excinfo:
            run_supervised_spmd(
                2,
                CFG,
                pa=2,
                pb=1,
                n_steps=20,
                checkpoint_dir=tmp_path,
                checkpoint_every=5,
                should_stop=lambda: "higher-priority job arrived",
            )
        assert excinfo.value.step == 5
        assert (tmp_path / "latest").read_text().strip() == "step-000000005"

    def test_resume_after_preemption_loses_nothing(self, tmp_path):
        """Preempt at step 5, resume without the stop request: the final
        state is bit-identical to an uninterrupted run."""
        with pytest.raises(PreemptRequired):
            run_supervised_spmd(
                2, CFG, pa=2, pb=1, n_steps=15, checkpoint_dir=tmp_path,
                checkpoint_every=5, should_stop=lambda: "yield",
            )
        final, log = run_supervised_spmd(
            2, CFG, pa=2, pb=1, n_steps=15, checkpoint_dir=tmp_path,
            checkpoint_every=5,
        )
        assert log == []
        ref = _uninterrupted(2, 2, 1, 15)
        np.testing.assert_array_equal(final.v, ref.v)
        assert final.time == ref.time
