"""Pencil decomposition block arithmetic tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pencil.decomp import PencilDecomp, block_range, block_size, block_slices


class TestBlockRange:
    @given(
        n=st.integers(min_value=1, max_value=500),
        p=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, n, p):
        """Blocks tile [0, n) exactly, in order, with sizes differing by <= 1."""
        if p > n:
            return
        ranges = [block_range(n, p, i) for i in range(p)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (s0, e0), (s1, _e1) in zip(ranges, ranges[1:]):
            assert e0 == s1
        sizes = [e - s for s, e in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            block_range(10, 4, 4)

    def test_block_slices_cover(self):
        sl = block_slices(10, 3)
        assert [s.start for s in sl] == [0, 4, 7]
        assert [s.stop for s in sl] == [4, 7, 10]

    def test_block_size(self):
        assert block_size(10, 3, 0) == 4
        assert block_size(10, 3, 2) == 3


class TestPencilDecomp:
    def make(self, rank, pa=2, pb=3):
        return PencilDecomp.for_rank(mx=8, mz=15, ny=12, nxq=24, nzq=24, pa=pa, pb=pb, rank=rank)

    def test_for_rank_coords(self):
        d = self.make(4)  # (a, b) = (1, 1) in a 2x3 grid
        assert (d.a, d.b) == (1, 1)

    def test_y_pencil_shapes_tile_spectral_grid(self):
        total = 0
        for rank in range(6):
            d = self.make(rank)
            sx, sz, ny = d.y_pencil_shape
            total += sx * sz
        assert total == 8 * 15

    def test_z_pencil_keeps_full_z(self):
        d = self.make(2)
        assert d.z_pencil_shape_spec[1] == 15
        assert d.z_pencil_shape_phys[1] == 24

    def test_x_pencil_keeps_full_x(self):
        d = self.make(5)
        assert d.x_pencil_shape_spec[0] == 8
        assert d.x_pencil_shape_phys[0] == 24

    def test_y_full_in_y_pencil(self):
        d = self.make(0)
        assert d.y_pencil_shape[2] == 12

    def test_validate_rejects_overdecomposition(self):
        d = PencilDecomp.for_rank(mx=2, mz=15, ny=12, nxq=24, nzq=24, pa=4, pb=1, rank=0)
        with pytest.raises(ValueError):
            d.validate()
