"""Sharded checkpoint tests: coordinated write/restore, kill-restart identity.

The distributed acceptance property: a 4-rank run whose rank 1 is killed
mid-transpose and that is relaunched by the job-level supervisor lands
bit-for-bit on the uninterrupted trajectory.
"""

import numpy as np
import pytest

from repro.core import ChannelConfig
from repro.core.checkpoint import (
    CheckpointCorruptError,
    CheckpointUnrecoverableError,
    ShardedCheckpointRotation,
)
from repro.instrument import RecoveryCounters
from repro.mpi.simmpi import FaultEvent, FaultPlan, run_spmd
from repro.pencil.distributed import DistributedChannelDNS, run_supervised_spmd

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)


def _flip_byte(path, offset_fraction=0.5):
    data = bytearray(path.read_bytes())
    data[int(len(data) * offset_fraction)] ^= 0xFF
    path.write_bytes(bytes(data))


def _uninterrupted_state(nsteps=10):
    def prog(comm):
        dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
        dns.initialize()
        dns.run(nsteps)
        return dns.gather_state()

    return run_spmd(4, prog)[0]


class TestShardedRoundTrip:
    def test_save_load_is_bit_exact(self, tmp_path):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(3)
            dns.save_checkpoint(tmp_path)

            fresh = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            fresh.load_checkpoint(tmp_path)
            assert fresh.step_count == 3
            assert fresh.state.time == dns.state.time
            np.testing.assert_array_equal(fresh.state.v, dns.state.v)
            np.testing.assert_array_equal(fresh.state.omega_y, dns.state.omega_y)
            fresh.run(2)
            dns.run(2)
            np.testing.assert_array_equal(fresh.state.v, dns.state.v)
            return True

        assert all(run_spmd(4, prog))

    def test_layout_on_disk(self, tmp_path):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(2)
            dns.save_checkpoint(tmp_path)
            return True

        run_spmd(4, prog)
        snap = tmp_path / "step-000000002"
        assert snap.is_dir()
        assert (snap / "manifest.json").exists()
        assert sorted(p.name for p in snap.glob("shard-*.npz")) == [
            f"shard-r{r:04d}.npz" for r in range(4)
        ]
        assert (tmp_path / "latest").read_text().strip() == snap.name

    def test_rotation_keeps_k_snapshots(self, tmp_path):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            rot = ShardedCheckpointRotation(tmp_path, keep=2)
            for _ in range(4):
                dns.run(1)
                rot.save(dns)
            return True

        run_spmd(4, prog)
        rot = ShardedCheckpointRotation(tmp_path, keep=2)
        assert [p.name for p in rot.snapshot_dirs()] == [
            "step-000000004",
            "step-000000003",
        ]


class TestCoordinatedFallback:
    def test_corrupt_shard_falls_back_collectively(self, tmp_path):
        """One flipped byte in one rank's shard must make ALL ranks skip
        that snapshot together and restore the previous one."""

        def save_two(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            rot = ShardedCheckpointRotation(tmp_path)
            dns.run(2)
            rot.save(dns)
            dns.run(2)
            rot.save(dns)
            return True

        run_spmd(4, save_two)
        _flip_byte(tmp_path / "step-000000004" / "shard-r0002.npz")

        counters = RecoveryCounters()

        def restore(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            ShardedCheckpointRotation(tmp_path, counters=counters).load_latest(dns)
            return dns.step_count

        assert run_spmd(4, restore) == [2, 2, 2, 2]
        assert counters.verify_failures >= 1

    def test_all_snapshots_corrupt_raises_everywhere(self, tmp_path):
        def save_one(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(1)
            dns.save_checkpoint(tmp_path)
            return True

        run_spmd(4, save_one)
        for shard in (tmp_path / "step-000000001").glob("shard-*.npz"):
            _flip_byte(shard)

        def restore(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            with pytest.raises(CheckpointCorruptError, match="no verifiable"):
                dns.load_checkpoint(tmp_path)
            comm.barrier()
            return True

        assert all(run_spmd(4, restore))

    def test_failure_message_names_shard_rank_path_and_reason(self, tmp_path):
        """When every snapshot is exhausted, the error says exactly which
        rank's shard failed verification and why — not a generic mismatch."""

        def save_one(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(1)
            dns.save_checkpoint(tmp_path)
            return True

        run_spmd(4, save_one)
        _flip_byte(tmp_path / "step-000000001" / "shard-r0002.npz")

        def restore(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            try:
                dns.load_checkpoint(tmp_path)
            except CheckpointCorruptError as exc:
                return str(exc)
            return None

        messages = run_spmd(4, restore)
        for msg in messages:
            assert msg is not None
            # which rank, which file, and the underlying reason
            assert "rank 2" in msg
            assert "shard-r0002.npz" in msg
            assert "failed verification" in msg
            assert "checksum mismatch" in msg or "unreadable" in msg

    def test_two_corrupt_generations_raise_typed_error_with_attribution(
        self, tmp_path
    ):
        """Regression for the exhaustion path: corrupt a different shard
        in each of two generations — the typed error lists *both*
        generations with per-shard rank/path/reason attribution, newest
        first, and is a CheckpointCorruptError for existing handlers."""

        def save_two(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(1)
            dns.save_checkpoint(tmp_path)
            dns.run(1)
            dns.save_checkpoint(tmp_path)
            return True

        run_spmd(4, save_two)
        _flip_byte(tmp_path / "step-000000001" / "shard-r0001.npz")
        _flip_byte(tmp_path / "step-000000002" / "shard-r0003.npz")

        def restore(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            try:
                dns.load_checkpoint(tmp_path)
            except CheckpointUnrecoverableError as exc:
                return exc
            return None

        for exc in run_spmd(4, restore):
            assert isinstance(exc, CheckpointCorruptError)  # handler compat
            names = [name for name, _ in exc.generations]
            assert names == ["step-000000002", "step-000000001"]  # newest first
            for (name, fails), rank, shard in (
                (exc.generations[0], 3, "shard-r0003.npz"),
                (exc.generations[1], 1, "shard-r0001.npz"),
            ):
                assert [f["rank"] for f in fails] == [rank]
                assert fails[0]["path"] == str(tmp_path / name / shard)
                assert "checksum mismatch" in fails[0]["reason"] or "unreadable" in fails[0]["reason"]
            # the message still carries the full story for log greps
            msg = str(exc)
            assert "no verifiable" in msg
            assert "rank 3" in msg and "shard-r0003.npz" in msg
            assert "rank 1" in msg and "shard-r0001.npz" in msg

    def test_layout_mismatch_rejected(self, tmp_path):
        def save_4ranks(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            dns.run(1)
            dns.save_checkpoint(tmp_path)
            return True

        run_spmd(4, save_4ranks)

        def restore_2ranks(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=1, pb=2)
            dns.load_checkpoint(tmp_path)

        with pytest.raises(ValueError, match="layout mismatch"):
            run_spmd(2, restore_2ranks)


class TestKillRestartIdentity:
    def test_killed_and_relaunched_run_matches_uninterrupted(self, tmp_path):
        """THE distributed acceptance criterion: rank 1 is killed inside
        a pencil-transpose alltoall mid-run; the job-level supervisor
        relaunches from the sharded snapshot at step 5 and the final
        state at step 10 is bit-for-bit the uninterrupted one."""
        straight = _uninterrupted_state(10)

        counters = RecoveryCounters()
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        final, log = run_supervised_spmd(
            4,
            CFG,
            pa=2,
            pb=2,
            n_steps=10,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
            fault_plans=[plan],
            counters=counters,
        )

        assert plan.triggered  # the kill really fired
        assert [e.kind for e in log] == ["restart"]
        assert "RankFailure" in log[0].detail
        assert counters.restarts == 1
        np.testing.assert_array_equal(final.v, straight.v)
        np.testing.assert_array_equal(final.omega_y, straight.omega_y)
        np.testing.assert_array_equal(final.u00, straight.u00)
        assert final.time == straight.time

    def test_unfaulted_supervised_run_needs_no_restart(self, tmp_path):
        straight = _uninterrupted_state(6)
        final, log = run_supervised_spmd(
            4, CFG, pa=2, pb=2, n_steps=6, checkpoint_dir=tmp_path, checkpoint_every=3
        )
        assert log == []
        np.testing.assert_array_equal(final.v, straight.v)

    def test_gives_up_after_max_restarts(self, tmp_path):
        """A kill that re-fires on every attempt exhausts the restart
        budget and the last failure propagates to the caller."""
        # the first alltoall fires after the baseline snapshot is durable,
        # so every attempt restarts cleanly and dies again at step 1
        plans = [
            FaultPlan([FaultEvent(action="kill", rank=0, op="alltoall", call=0)])
            for _ in range(3)
        ]
        with pytest.raises(Exception) as info:
            run_supervised_spmd(
                4,
                CFG,
                pa=2,
                pb=2,
                n_steps=4,
                checkpoint_dir=tmp_path,
                checkpoint_every=2,
                max_restarts=2,
                fault_plans=plans,
            )
        assert "killed by fault plan" in str(info.value)
