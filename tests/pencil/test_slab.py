"""Slab (planar) decomposition tests — and why the paper rejects it."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.transforms import to_quadrature_grid
from repro.mpi import run_spmd
from repro.pencil.slab import SlabTransforms, max_slab_ranks

from tests.pencil.test_parallel_fft import make_spectral

NX, NY, NZ = 16, 12, 16


class TestSlabTransforms:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_serial_reference(self, nranks):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid)
        phys_ref = to_quadrature_grid(spec, grid)

        def prog(comm):
            tr = SlabTransforms(comm, NX, NY, NZ, dealias=True)
            local = np.ascontiguousarray(spec[tr.x_slice, :, :])
            phys = tr.to_physical(local)
            assert np.abs(phys - phys_ref[:, tr.zq_slice, :]).max() < 1e-12
            back = tr.from_physical(phys)
            assert np.abs(back - local).max() < 1e-12
            return True

        assert all(run_spmd(nranks, prog))

    def test_cycle_identity(self):
        grid = ChannelGrid(NX, NY, NZ)
        spec = make_spectral(grid, seed=2)

        def prog(comm):
            tr = SlabTransforms(comm, NX, NY, NZ, dealias=False)
            local = np.ascontiguousarray(spec[tr.x_slice, :, :])
            out = tr.fft_cycle(local)
            assert np.abs(out - local).max() < 1e-12
            return True

        assert all(run_spmd(2, prog))

    def test_shape_validation(self):
        def prog(comm):
            tr = SlabTransforms(comm, NX, NY, NZ)
            with pytest.raises(ValueError):
                tr.to_physical(np.zeros((1, 1, 1), complex))
            comm.barrier()
            return True

        assert all(run_spmd(2, prog))


class TestInflexibility:
    """The §2.2 objection, quantified."""

    def test_rank_ceiling(self):
        assert max_slab_ranks(NX, NZ, dealias=True) == min(NX // 2, 3 * NZ // 2)

    def test_too_many_ranks_rejected(self):
        def prog(comm):
            with pytest.raises(ValueError, match="ceiling"):
                SlabTransforms(comm, NX, NY, NZ)
            comm.barrier()
            return True

        # 16 ranks > mx = 8: the slab code simply cannot run
        assert all(run_spmd(16, prog))

    def test_paper_production_grid_ceiling(self):
        """10240 x 1536 x 7680: a slab code caps at 5,120 ranks — two
        orders of magnitude below the paper's 524,288 cores."""
        ceiling = max_slab_ranks(10240, 7680)
        assert ceiling == 5120
        assert 524288 / ceiling > 100

    def test_pencil_has_no_such_ceiling(self):
        """The pencil decomposition reaches P = mx * min(mz, ny) ranks."""
        mx, mz, ny = 10240 // 2, 7680 - 1, 1536
        pencil_ceiling = mx * min(mz, ny)
        assert pencil_ceiling > 524288

    def test_slab_has_single_monolithic_alltoall(self):
        """All ranks share one transpose communicator: the Table 5
        node-locality optimisation does not exist for slabs."""

        def prog(comm):
            tr = SlabTransforms(comm, NX, NY, NZ)
            return tr.t_fwd.comm.size

        sizes = run_spmd(4, prog)
        assert all(s == 4 for s in sizes)  # the whole world, always
