"""Distributed statistics: identity with the serial accumulator."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.mpi import run_spmd
from repro.pencil.distributed import DistributedChannelDNS
from repro.pencil.statistics import DistributedStatistics

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=17)


@pytest.fixture(scope="module")
def serial_stats():
    dns = ChannelDNS(CFG)
    dns.initialize()
    dns.run(4, sample_every=2)
    return dns.statistics, dns.config.nu


class TestParity:
    def test_profiles_match_serial(self, serial_stats):
        serial, nu = serial_stats

        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2)
            dns.initialize()
            stats = DistributedStatistics(dns)
            for k in range(4):
                dns.step()
                if (k + 1) % 2 == 0:
                    stats.sample()
            return {name: stats.profile(name) for name in stats.PROFILES}

        results = run_spmd(4, prog)
        for name in DistributedStatistics.PROFILES:
            for r in results:
                np.testing.assert_allclose(
                    r[name], serial.profile(name), atol=1e-12, err_msg=name
                )

    def test_friction_velocity_matches(self, serial_stats):
        serial, nu = serial_stats

        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=4, pb=1)
            dns.initialize()
            stats = DistributedStatistics(dns)
            for k in range(4):
                dns.step()
                if (k + 1) % 2 == 0:
                    stats.sample()
            return stats.friction_velocity(CFG.nu)

        for u_tau in run_spmd(4, prog):
            assert u_tau == pytest.approx(serial.friction_velocity(nu), abs=1e-12)

    def test_no_samples_raises(self):
        def prog(comm):
            dns = DistributedChannelDNS(comm, CFG, pa=2, pb=1)
            dns.initialize()
            stats = DistributedStatistics(dns)
            with pytest.raises(RuntimeError):
                stats.profile("uu")
            comm.barrier()
            return True

        assert all(run_spmd(2, prog))
