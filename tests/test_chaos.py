"""Chaos soak tests: schedule generator properties, a short tier-1 soak,
and the full 25-seed sweep behind the ``soak`` marker."""

import pytest

from repro.chaos import (
    JOB_HEALTHY,
    ChannelConfig,
    random_fault_plan,
    resolve_transpose_method,
    run_chaos_soak,
    run_scheduler_soak,
    scheduler_soak_summary,
    soak_summary,
)
from repro.pencil.transpose import ENV_METHOD, TransposeMethod
from repro.tuning import MEASURE_STATS, WisdomStore

HEALTHY = {"completed", "recovered", "degraded"}


class TestScheduleGenerator:
    def test_deterministic_per_seed(self):
        def sig(plan):
            return [(e.action, e.rank, e.op, e.call) for e in plan.events]

        assert sig(random_fault_plan(3, 4)) == sig(random_fault_plan(3, 4))

    def test_seeds_vary_the_schedule(self):
        sigs = {
            tuple((e.action, e.rank, e.op, e.call) for e in random_fault_plan(s, 4).events)
            for s in range(10)
        }
        assert len(sigs) > 1

    def test_kills_capped_below_world_size(self):
        for seed in range(50):
            plan = random_fault_plan(seed, 4, max_events=6)
            kills = sum(1 for e in plan.events if e.action == "kill")
            assert kills <= 3


class TestShortSoak:
    def test_short_sweep_all_graceful(self, tmp_path):
        results = run_chaos_soak(range(3), tmp_path)
        summary = soak_summary(results)
        assert summary["all_graceful"], [
            (r.seed, r.classification, r.detail) for r in results
        ]
        assert set(summary["classifications"]) <= HEALTHY

    def test_short_sweep_pipelined_transposes(self, tmp_path):
        """The overlapped-transpose path survives the same fault soak and
        still lands on the serial reference bits."""
        results = run_chaos_soak(
            range(2), tmp_path, method=TransposeMethod.PIPELINED
        )
        summary = soak_summary(results)
        assert summary["all_graceful"], [
            (r.seed, r.classification, r.detail) for r in results
        ]
        assert set(summary["classifications"]) <= HEALTHY

    def test_short_sweep_mixed_wire(self, tmp_path):
        """Mixed-precision payloads compose with fault injection and
        elastic shrink: graceful classifications against the serial
        oracle at the documented single-precision tolerance."""
        results = run_chaos_soak(
            range(2), tmp_path, method=TransposeMethod.PIPELINED,
            wire_precision="mixed", atol=2e-5,
        )
        summary = soak_summary(results)
        assert summary["all_graceful"], [
            (r.seed, r.classification, r.detail) for r in results
        ]
        assert set(summary["classifications"]) <= HEALTHY
        # the sweep really exercised the fault machinery under mixed wire
        assert summary["events_fired"] > 0


class TestMethodResolution:
    """The soak's transpose pin comes from the env or the wisdom cache —
    the sweep itself never re-times methods per attempt."""

    def test_env_pin_wins_without_timing(self, monkeypatch):
        monkeypatch.setenv(ENV_METHOD, "pipelined")
        MEASURE_STATS.reset()
        m = resolve_transpose_method(None, 4, 2, 2)
        assert m is TransposeMethod.PIPELINED
        assert MEASURE_STATS.transpose_methods_timed == 0

    def test_wisdom_warm_resolution_skips_timing(self, tmp_path):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)
        store = WisdomStore(tmp_path / "wisdom.json")
        MEASURE_STATS.reset()
        cold = resolve_transpose_method(cfg, 4, 2, 2, wisdom=store)
        assert MEASURE_STATS.transpose_methods_timed > 0
        MEASURE_STATS.reset()
        warm = resolve_transpose_method(cfg, 4, 2, 2, wisdom=store)
        assert MEASURE_STATS.transpose_methods_timed == 0
        assert warm is cold


class TestSchedulerShortSoak:
    def test_short_scheduler_sweep_isolated(self, tmp_path):
        """Tier-1 slice of the scheduler soak: concurrent jobs on one
        pool, faults in one of them, zero hangs, and every completed job
        bit-for-bit on its own serial oracle."""
        results = run_scheduler_soak(range(3), tmp_path)
        summary = scheduler_soak_summary(results)
        assert summary["all_ok"], [
            (r.seed, r.outcomes, r.detail) for r in results if not r.ok
        ]
        assert summary["hangs"] == 0
        assert summary["isolation_breaks"] == 0
        assert set(summary["outcomes"]) <= set(JOB_HEALTHY)
        # every scenario left a validated manager event stream behind
        assert all(r.manager_events > 0 for r in results)


@pytest.mark.soak
class TestSchedulerFullSoak:
    def test_25_seed_scheduler_sweep_never_hangs_or_leaks_faults(self, tmp_path):
        """THE scheduler acceptance criterion: >= 25 seeded multi-job
        scenarios (faults, preemptors, sticky and probed quarantines) —
        zero hangs, zero cross-job divergence (every completed job
        bit-identical to its serial oracle), preempted jobs lose no
        checkpointed progress."""
        results = run_scheduler_soak(range(25), tmp_path, verbose=True)
        summary = scheduler_soak_summary(results)
        bad = [(r.seed, r.outcomes, r.detail) for r in results if not r.ok]
        assert summary["all_ok"], bad
        assert summary["hangs"] == 0
        assert summary["isolation_breaks"] == 0
        assert set(summary["outcomes"]) <= set(JOB_HEALTHY)
        # the sweep must actually have exercised the recovery machinery
        assert summary["shrinks"] + summary["restarts"] + summary["retries"] > 0
        # ... and any preempted-and-finished job is exact by construction
        # of all_ok; record that preemption really happened somewhere
        preempted = summary["outcomes"].get("preempted-resumed", 0)
        assert summary["preemptions"] >= preempted


@pytest.mark.soak
class TestFullSoak:
    def test_25_seed_sweep_never_hangs_or_diverges(self, tmp_path):
        """THE chaos acceptance criterion: >= 25 seeded random fault
        schedules, zero deadlocks, every run classified completed /
        recovered / degraded — never hung, never silently diverged."""
        results = run_chaos_soak(range(25), tmp_path, verbose=True)
        summary = soak_summary(results)
        bad = [(r.seed, r.classification, r.detail) for r in results if not r.ok]
        assert summary["all_graceful"], bad
        assert set(summary["classifications"]) <= HEALTHY
        assert "hung" not in summary["classifications"]
        assert "diverged" not in summary["classifications"]
        # the sweep must actually have exercised the fault machinery
        assert summary["events_fired"] > 0
        assert summary["shrinks"] + summary["restarts"] > 0
