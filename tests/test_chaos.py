"""Chaos soak tests: schedule generator properties, a short tier-1 soak,
and the full 25-seed sweep behind the ``soak`` marker."""

import pytest

from repro.chaos import random_fault_plan, run_chaos_soak, soak_summary
from repro.pencil.transpose import TransposeMethod

HEALTHY = {"completed", "recovered", "degraded"}


class TestScheduleGenerator:
    def test_deterministic_per_seed(self):
        def sig(plan):
            return [(e.action, e.rank, e.op, e.call) for e in plan.events]

        assert sig(random_fault_plan(3, 4)) == sig(random_fault_plan(3, 4))

    def test_seeds_vary_the_schedule(self):
        sigs = {
            tuple((e.action, e.rank, e.op, e.call) for e in random_fault_plan(s, 4).events)
            for s in range(10)
        }
        assert len(sigs) > 1

    def test_kills_capped_below_world_size(self):
        for seed in range(50):
            plan = random_fault_plan(seed, 4, max_events=6)
            kills = sum(1 for e in plan.events if e.action == "kill")
            assert kills <= 3


class TestShortSoak:
    def test_short_sweep_all_graceful(self, tmp_path):
        results = run_chaos_soak(range(3), tmp_path)
        summary = soak_summary(results)
        assert summary["all_graceful"], [
            (r.seed, r.classification, r.detail) for r in results
        ]
        assert set(summary["classifications"]) <= HEALTHY

    def test_short_sweep_pipelined_transposes(self, tmp_path):
        """The overlapped-transpose path survives the same fault soak and
        still lands on the serial reference bits."""
        results = run_chaos_soak(
            range(2), tmp_path, method=TransposeMethod.PIPELINED
        )
        summary = soak_summary(results)
        assert summary["all_graceful"], [
            (r.seed, r.classification, r.detail) for r in results
        ]
        assert set(summary["classifications"]) <= HEALTHY


@pytest.mark.soak
class TestFullSoak:
    def test_25_seed_sweep_never_hangs_or_diverges(self, tmp_path):
        """THE chaos acceptance criterion: >= 25 seeded random fault
        schedules, zero deadlocks, every run classified completed /
        recovered / degraded — never hung, never silently diverged."""
        results = run_chaos_soak(range(25), tmp_path, verbose=True)
        summary = soak_summary(results)
        bad = [(r.seed, r.classification, r.detail) for r in results if not r.ok]
        assert summary["all_graceful"], bad
        assert set(summary["classifications"]) <= HEALTHY
        assert "hung" not in summary["classifications"]
        assert "diverged" not in summary["classifications"]
        # the sweep must actually have exercised the fault machinery
        assert summary["events_fired"] > 0
        assert summary["shrinks"] + summary["restarts"] > 0
