"""Blocked solve-engine tests: correctness, bit-for-bit contracts,
scipy cross-checks and the zero-allocation discipline.

The engine's correctness contract has two layers: numerical agreement
with dense/scipy references (tolerance-based), and *exact* agreement
between its own entry points — ``solve`` on a complex vector, ``solve_many``
on the stacked re/im columns, and fused ``solve_stack`` groups must all
produce bit-identical columns (fixed sweep width, independent columns).
"""

import numpy as np
import pytest
import scipy.linalg

from repro.instrument import SolveCounters
from repro.linalg.custom import FoldedLU
from repro.linalg.engine import BandedSolveEngine, default_block
from repro.linalg.structure import BandedSystemSpec, FoldedBanded

from tests.linalg.test_structure import corner_banded_matrix


def make_lu(rng, n=64, kl=3, ku=3, corner=0, nbatch=4, **kw):
    a, spec = corner_banded_matrix(rng, n=n, kl=kl, ku=ku, corner=corner, nbatch=nbatch)
    return a, spec, FoldedLU(FoldedBanded.from_dense(a, spec), **kw)


class TestAgainstDense:
    @pytest.mark.parametrize("bandwidth", [3, 5, 7, 9, 11, 13, 15])
    @pytest.mark.parametrize("corner", [0, 2])
    def test_bandwidth_sweep(self, rng, bandwidth, corner):
        """Random corner-banded systems at the paper's Table 1 bandwidths."""
        kl = ku = (bandwidth - 1) // 2
        a, spec, lu = make_lu(rng, n=80, kl=kl, ku=ku, corner=corner, nbatch=3)
        rhs = rng.standard_normal((3, 80))
        x = lu.engine().solve(rhs)
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(3)])
        np.testing.assert_allclose(x, ref, atol=1e-9)

    def test_complex_rhs(self, rng):
        a, spec, lu = make_lu(rng, corner=3)
        rhs = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        x = lu.engine().solve(rhs)
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(4)])
        np.testing.assert_allclose(x, ref, atol=1e-9)
        assert np.iscomplexobj(x)

    def test_matches_solve_reference(self, rng):
        """Engine and row-at-a-time reference sweeps agree to rounding."""
        a, spec, lu = make_lu(rng, n=50, corner=2)
        rhs = rng.standard_normal((4, 50))
        np.testing.assert_allclose(lu.engine().solve(rhs), lu.solve_reference(rhs), atol=1e-11)

    def test_block_size_invariance(self, rng):
        """Every panel height gives the same answer (to rounding)."""
        a, spec, lu = make_lu(rng, n=70, corner=2)
        rhs = rng.standard_normal((4, 70))
        ref = lu.engine(block=70).solve(rhs)
        for b in (1, 3, 8, 16, 33, 64):
            np.testing.assert_allclose(lu.engine(block=b).solve(rhs), ref, atol=1e-11)

    def test_solve_many_matches_columnwise(self, rng):
        a, spec, lu = make_lu(rng, n=40, corner=1, nbatch=2)
        cols = rng.standard_normal((2, 40, 7))
        xs = lu.solve_many(cols)
        for j in range(7):
            ref = np.stack([np.linalg.solve(a[b], cols[b, :, j]) for b in range(2)])
            np.testing.assert_allclose(xs[:, :, j], ref, atol=1e-9)


class TestAgainstScipy:
    @pytest.mark.parametrize("bandwidth", [3, 7, 11, 15])
    @pytest.mark.parametrize("corner", [0, 3])
    def test_solve_banded_crosscheck(self, rng, bandwidth, corner):
        """Independent oracle: LAPACK gbsv on the padded general band."""
        kl = ku = (bandwidth - 1) // 2
        a, spec, lu = make_lu(rng, n=96, kl=kl, ku=ku, corner=corner, nbatch=3)
        rhs = rng.standard_normal((3, 96))
        x = lu.engine().solve(rhs)
        # padded band covering the full-window boundary rows
        klp = kup = spec.window - 1
        for b in range(3):
            ab = np.zeros((klp + kup + 1, 96))
            for off in range(-klp, kup + 1):
                d = np.diagonal(a[b], off)
                ab[kup - off, max(off, 0) : max(off, 0) + d.size] = d
            ref = scipy.linalg.solve_banded((klp, kup), ab, rhs[b])
            np.testing.assert_allclose(x[b], ref, atol=1e-9)


class TestBitForBitContracts:
    def test_complex_equals_stacked_real(self, rng):
        """The real-factor complex sweep is exactly the stacked-real sweep."""
        a, spec, lu = make_lu(rng, n=64, corner=3)
        rhs = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        xc = lu.solve(rhs)
        xm = lu.solve_many(np.stack([rhs.real, rhs.imag], axis=-1))
        assert np.array_equal(xm[:, :, 0], xc.real)
        assert np.array_equal(xm[:, :, 1], xc.imag)

    def test_solve_stack_equals_separate_solves(self, rng):
        """Fused groups reproduce the separate solves bit for bit,
        regardless of each part's position in the column stream."""
        a, spec, lu = make_lu(rng, n=64, corner=2)
        rc1 = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        rr1 = rng.standard_normal((4, 64))
        rc2 = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        rr2 = rng.standard_normal((4, 64))
        outs = lu.engine().solve_stack([rc1, rr1, rc2, rr2])
        assert np.array_equal(outs[0], lu.solve(rc1))
        assert np.array_equal(outs[1], lu.solve(rr1))
        assert np.array_equal(outs[2], lu.solve(rc2))
        assert np.array_equal(outs[3], lu.solve(rr2))

    def test_solve_repeatable(self, rng):
        a, spec, lu = make_lu(rng, n=48)
        rhs = rng.standard_normal((4, 48))
        assert np.array_equal(lu.solve(rhs), lu.solve(rhs))


class TestZeroAllocation:
    def test_steady_state_workspace_frozen(self, rng):
        """After the engine is built, no solve path allocates workspace
        (the transform-pipeline discipline of tests/fft/test_pipeline.py)."""
        a, spec, lu = make_lu(rng, n=64, corner=2)
        counters = SolveCounters()
        eng = BandedSolveEngine(lu, counters=counters)
        assert counters.workspace_allocs == 2  # X, T — build-time only
        assert counters.workspace_bytes == eng.workspace_bytes()

        rhs = rng.standard_normal((4, 64))
        rhc = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        cols = rng.standard_normal((4, 64, 5))
        eng.solve(rhs)  # warm-up
        snap = counters.snapshot()
        for _ in range(4):
            eng.solve(rhs)
            eng.solve(rhc)
            eng.solve_many(cols)
            eng.solve_stack([rhc, rhs])
        after = counters.snapshot()
        assert after["workspace_allocs"] == snap["workspace_allocs"]
        assert after["workspace_bytes"] == snap["workspace_bytes"]
        # execution counters did move
        assert after["solves"] == snap["solves"] + 16
        assert after["sweeps"] > snap["sweeps"]
        assert after["columns"] == snap["columns"] + 4 * (1 + 2 + 5 + 3)

    def test_counters_report(self, rng):
        a, spec, lu = make_lu(rng, n=32)
        eng = lu.engine()
        eng.solve(rng.standard_normal((4, 32)))
        rep = eng.counters.report()
        assert "workspace=" in rep and "solves=" in rep


class TestValidation:
    def test_default_block(self):
        assert default_block(9) == 9
        assert default_block(16) == 16
        assert default_block(65) == 16
        assert default_block(1024) == 16

    def test_bad_block_raises(self, rng):
        a, spec, lu = make_lu(rng, n=32)
        with pytest.raises(ValueError):
            BandedSolveEngine(lu, block=-2)

    def test_rhs_shape_mismatch(self, rng):
        a, spec, lu = make_lu(rng, n=32)
        with pytest.raises(ValueError):
            lu.engine().solve(rng.standard_normal((2, 32)))
        with pytest.raises(ValueError):
            lu.engine().solve_many(rng.standard_normal((4, 32)))

    def test_solve_many_rejects_complex(self, rng):
        a, spec, lu = make_lu(rng, n=32)
        with pytest.raises(TypeError):
            lu.solve_many(rng.standard_normal((4, 32, 2)) + 0j)

    def test_single_vector_squeeze(self, rng):
        a, spec, lu = make_lu(rng, n=32, nbatch=1)
        rhs = rng.standard_normal(32)
        x = lu.engine().solve(rhs)
        assert x.shape == (32,)
        np.testing.assert_allclose(x, np.linalg.solve(a[0], rhs), atol=1e-9)

    def test_engine_cached_per_block(self, rng):
        a, spec, lu = make_lu(rng, n=40)
        assert lu.engine() is lu.engine()
        assert lu.engine(block=8) is lu.engine(block=8)
        assert lu.engine(block=8) is not lu.engine(block=16)
