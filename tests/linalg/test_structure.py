"""Folded banded storage structure tests."""

import numpy as np
import pytest

from repro.linalg.structure import BandedSystemSpec, FoldedBanded


def corner_banded_matrix(rng, n=30, kl=3, ku=2, corner=3, nbatch=4):
    """Random diagonally-dominant corner-banded batch + its spec."""
    spec = BandedSystemSpec(n=n, kl=kl, ku=ku, corner=corner)
    a = np.zeros((nbatch, n, n))
    for b in range(nbatch):
        for off in range(-kl, ku + 1):
            a[b] += np.diag(rng.standard_normal(n - abs(off)), off)
        a[b] += np.eye(n) * 10
    w = spec.window
    a[:, 0, :w] = rng.standard_normal((nbatch, w))
    a[:, 0, 0] += 10
    a[:, -1, -w:] = rng.standard_normal((nbatch, w))
    a[:, -1, -1] += 10
    return a, spec


class TestSpec:
    def test_window(self):
        spec = BandedSystemSpec(n=20, kl=3, ku=2, corner=4)
        assert spec.window == 10

    def test_jlo_monotone_and_clipped(self):
        spec = BandedSystemSpec(n=20, kl=3, ku=2, corner=4)
        jlo = spec.jlo
        assert np.all(np.diff(jlo) >= 0)
        assert jlo[0] == 0
        assert jlo[-1] == 20 - spec.window

    def test_memory_halved_vs_lapack(self):
        """The paper's claim: folded storage ~half the general-band layout."""
        spec = BandedSystemSpec(n=1024, kl=7, ku=7, corner=7)
        ratio = spec.folded_storage() / spec.lapack_storage()
        assert ratio < 0.55

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            BandedSystemSpec(n=0, kl=1, ku=1)
        with pytest.raises(ValueError):
            BandedSystemSpec(n=10, kl=-1, ku=0)
        with pytest.raises(ValueError):
            BandedSystemSpec(n=4, kl=3, ku=3)  # window exceeds n

    def test_contains(self):
        spec = BandedSystemSpec(n=10, kl=1, ku=1, corner=2)
        assert spec.contains(0, 3)  # corner element within the top window
        assert not spec.contains(5, 9)


class TestFoldedRoundtrip:
    def test_dense_roundtrip(self, rng):
        a, spec = corner_banded_matrix(rng)
        fb = FoldedBanded.from_dense(a, spec)
        np.testing.assert_array_equal(fb.to_dense(), a)

    def test_single_matrix_promoted_to_batch(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=1)
        fb = FoldedBanded.from_dense(a[0], spec)
        assert fb.nbatch == 1

    def test_structure_violation_raises(self, rng):
        a, spec = corner_banded_matrix(rng)
        a[0, 15, 0] = 1.0  # far outside the band of an interior row
        with pytest.raises(ValueError, match="outside the declared structure"):
            FoldedBanded.from_dense(a, spec)

    def test_matvec_matches_dense(self, rng):
        a, spec = corner_banded_matrix(rng)
        fb = FoldedBanded.from_dense(a, spec)
        x = rng.standard_normal((a.shape[0], spec.n))
        expected = np.einsum("bij,bj->bi", a, x)
        np.testing.assert_allclose(fb.matvec(x), expected, atol=1e-12)

    def test_zeros_constructor(self):
        spec = BandedSystemSpec(n=12, kl=2, ku=2)
        fb = FoldedBanded.zeros(spec, nbatch=3)
        assert fb.data.shape == (3, 12, 5)

    def test_shape_mismatch_raises(self):
        spec = BandedSystemSpec(n=12, kl=2, ku=2)
        with pytest.raises(ValueError):
            FoldedBanded(spec, np.zeros((3, 12, 7)))
