"""Reference (LAPACK-analogue) solver path tests."""

import numpy as np

from repro.linalg.reference import (
    netlib_banded_lu,
    netlib_banded_solve,
    padded_bandwidths,
    solve_padded_complex,
    solve_padded_split,
    to_diagonal_ordered,
)
from repro.linalg.structure import BandedSystemSpec

from tests.linalg.test_structure import corner_banded_matrix


class TestPacking:
    def test_diagonal_ordered_roundtrip(self, rng):
        n, kl, ku = 12, 2, 3
        dense = np.zeros((n, n))
        for off in range(-kl, ku + 1):
            dense += np.diag(rng.standard_normal(n - abs(off)), off)
        ab = to_diagonal_ordered(dense, kl, ku)
        for i in range(n):
            for j in range(max(0, i - kl), min(n, i + ku + 1)):
                assert ab[ku + i - j, j] == dense[i, j]

    def test_padded_bandwidths_from_dense(self, rng):
        a, spec = corner_banded_matrix(rng, n=30, kl=2, ku=2, corner=3)
        klp, kup = padded_bandwidths(spec, a)
        # Padded band must cover the corner rows' reach
        w = spec.window
        assert kup >= w - 1  # row 0 reaches column w-1
        assert klp >= w - 1  # row n-1 reaches back w-1 columns

    def test_padded_bandwidths_worst_case_without_dense(self):
        spec = BandedSystemSpec(n=30, kl=2, ku=2, corner=3)
        klp, kup = padded_bandwidths(spec)
        assert (klp, kup) == (spec.window - 1, spec.window - 1)
        assert padded_bandwidths(BandedSystemSpec(n=30, kl=2, ku=2)) == (2, 2)


class TestNetlibPath:
    def test_real_solve(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=1)
        klp, kup = padded_bandwidths(spec, a)
        ab = netlib_banded_lu(a[0], klp, kup)
        rhs = rng.standard_normal(spec.n)
        x = netlib_banded_solve(ab, klp, kup, rhs)
        np.testing.assert_allclose(x, np.linalg.solve(a[0], rhs), atol=1e-9)

    def test_complex_solve_zgbtrf_analogue(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=1)
        klp, kup = padded_bandwidths(spec, a)
        ab = netlib_banded_lu(a[0].astype(complex), klp, kup)
        rhs = rng.standard_normal(spec.n) + 1j * rng.standard_normal(spec.n)
        x = netlib_banded_solve(ab, klp, kup, rhs)
        np.testing.assert_allclose(x, np.linalg.solve(a[0], rhs), atol=1e-9)


class TestVendorPaths:
    def test_complex_promotion_path(self, rng):
        a, spec = corner_banded_matrix(rng)
        rhs = rng.standard_normal((4, spec.n)) + 1j * rng.standard_normal((4, spec.n))
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(4)])
        np.testing.assert_allclose(solve_padded_complex(a, rhs, spec), ref, atol=1e-10)

    def test_split_real_path(self, rng):
        a, spec = corner_banded_matrix(rng)
        rhs = rng.standard_normal((4, spec.n)) + 1j * rng.standard_normal((4, spec.n))
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(4)])
        np.testing.assert_allclose(solve_padded_split(a, rhs, spec), ref, atol=1e-10)

    def test_paths_agree_with_each_other(self, rng):
        a, spec = corner_banded_matrix(rng, n=25, kl=1, ku=1, corner=2)
        rhs = rng.standard_normal((4, spec.n)) + 1j * rng.standard_normal((4, spec.n))
        np.testing.assert_allclose(
            solve_padded_complex(a, rhs, spec),
            solve_padded_split(a, rhs, spec),
            atol=1e-10,
        )
