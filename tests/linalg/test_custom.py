"""Custom folded-banded LU solver tests (the paper's §4.1.1 kernel)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.custom import FoldedLU, infer_spec, solve_corner_banded
from repro.linalg.structure import BandedSystemSpec, FoldedBanded

from tests.linalg.test_structure import corner_banded_matrix


class TestFoldedLU:
    def test_matches_dense_solve_real(self, rng):
        a, spec = corner_banded_matrix(rng)
        rhs = rng.standard_normal((a.shape[0], spec.n))
        x = FoldedLU(FoldedBanded.from_dense(a, spec)).solve(rhs)
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(a.shape[0])])
        np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_matches_dense_solve_complex_rhs(self, rng):
        """Real factors applied to a complex RHS — the key custom-path feature."""
        a, spec = corner_banded_matrix(rng)
        rhs = rng.standard_normal((4, spec.n)) + 1j * rng.standard_normal((4, spec.n))
        x = FoldedLU(FoldedBanded.from_dense(a, spec)).solve(rhs)
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(4)])
        np.testing.assert_allclose(x, ref, atol=1e-10)
        assert np.iscomplexobj(x)

    def test_pure_banded_no_corner(self, rng):
        a, spec = corner_banded_matrix(rng, corner=0)
        rhs = rng.standard_normal((4, spec.n))
        x = FoldedLU(FoldedBanded.from_dense(a, spec)).solve(rhs)
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(4)])
        np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_single_vector_rhs(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=1)
        rhs = rng.standard_normal(spec.n)
        x = FoldedLU(FoldedBanded.from_dense(a, spec)).solve(rhs)
        np.testing.assert_allclose(x, np.linalg.solve(a[0], rhs), atol=1e-10)

    def test_reusable_factors(self, rng):
        a, spec = corner_banded_matrix(rng)
        lu = FoldedLU(FoldedBanded.from_dense(a, spec))
        for _ in range(3):
            rhs = rng.standard_normal((4, spec.n))
            x = lu.solve(rhs)
            ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(4)])
            np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_zero_pivot_raises(self):
        spec = BandedSystemSpec(n=6, kl=1, ku=1)
        dense = np.diag(np.ones(5), 1) + np.diag(np.ones(5), -1)  # zero diagonal
        with pytest.raises(ZeroDivisionError):
            FoldedLU(FoldedBanded.from_dense(dense, spec))

    def test_rhs_shape_mismatch_raises(self, rng):
        a, spec = corner_banded_matrix(rng)
        lu = FoldedLU(FoldedBanded.from_dense(a, spec))
        with pytest.raises(ValueError):
            lu.solve(rng.standard_normal((2, spec.n)))

    def test_growth_check(self, rng):
        a, spec = corner_banded_matrix(rng)
        lu = FoldedLU(FoldedBanded.from_dense(a, spec), check=True)
        assert lu.growth_factor is not None
        assert np.all(lu.growth_factor < 100.0)

    def test_identity_matrix(self):
        spec = BandedSystemSpec(n=8, kl=1, ku=1)
        lu = FoldedLU(FoldedBanded.from_dense(np.eye(8), spec))
        rhs = np.arange(8.0)
        np.testing.assert_allclose(lu.solve(rhs), rhs)

    @given(
        n=st.integers(min_value=8, max_value=40),
        kl=st.integers(min_value=0, max_value=3),
        ku=st.integers(min_value=0, max_value=3),
        corner=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_dense(self, n, kl, ku, corner, seed):
        """Any well-conditioned corner-banded system solves like dense."""
        if kl + ku + 1 + corner > n:
            return
        r = np.random.default_rng(seed)
        a, spec = corner_banded_matrix(r, n=n, kl=kl, ku=ku, corner=corner, nbatch=2)
        rhs = r.standard_normal((2, n))
        x = FoldedLU(FoldedBanded.from_dense(a, spec)).solve(rhs)
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(2)])
        np.testing.assert_allclose(x, ref, atol=1e-8)


class TestFlopAccounting:
    def test_flops_positive_and_scale_with_bandwidth(self, rng):
        flops = []
        for kl in (1, 3, 5):
            a, spec = corner_banded_matrix(rng, n=50, kl=kl, ku=kl, corner=0)
            lu = FoldedLU(FoldedBanded.from_dense(a, spec))
            flops.append(lu.factor_flops())
        assert flops[0] < flops[1] < flops[2]

    def test_solve_flops(self, rng):
        a, spec = corner_banded_matrix(rng, n=30)
        lu = FoldedLU(FoldedBanded.from_dense(a, spec))
        assert lu.solve_flops() > 0


class TestReferenceSweeps:
    def test_reference_matches_dense(self, rng):
        a, spec = corner_banded_matrix(rng)
        rhs = rng.standard_normal((a.shape[0], spec.n))
        x = FoldedLU(FoldedBanded.from_dense(a, spec)).solve_reference(rhs)
        ref = np.stack([np.linalg.solve(a[b], rhs[b]) for b in range(a.shape[0])])
        np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_reference_matches_engine(self, rng):
        """The retired row-at-a-time sweeps remain an oracle for the engine."""
        a, spec = corner_banded_matrix(rng)
        lu = FoldedLU(FoldedBanded.from_dense(a, spec))
        rhs = rng.standard_normal((a.shape[0], spec.n)) + 1j * rng.standard_normal(
            (a.shape[0], spec.n)
        )
        np.testing.assert_allclose(lu.solve(rhs), lu.solve_reference(rhs), atol=1e-11)

    def test_complex_solve_is_stacked_real_sweep(self, rng):
        """Docstring contract: no dtype promotion — a complex solve IS the
        stacked re/im real sweep, bit for bit."""
        a, spec = corner_banded_matrix(rng)
        lu = FoldedLU(FoldedBanded.from_dense(a, spec))
        rhs = rng.standard_normal((4, spec.n)) + 1j * rng.standard_normal((4, spec.n))
        xc = lu.solve(rhs)
        xm = lu.solve_many(np.stack([rhs.real, rhs.imag], axis=-1))
        assert np.array_equal(xc.real, xm[:, :, 0])
        assert np.array_equal(xc.imag, xm[:, :, 1])


class TestConvenience:
    def test_solve_corner_banded_single(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=1)
        rhs = rng.standard_normal(spec.n)
        x = solve_corner_banded(a[0], rhs)
        np.testing.assert_allclose(x, np.linalg.solve(a[0], rhs), atol=1e-9)

    def test_shared_rhs_against_batched_dense(self, rng):
        """Regression: a 1-D rhs against a batched dense used to mis-shape;
        it must broadcast to every batch member."""
        a, spec = corner_banded_matrix(rng, nbatch=3)
        rhs = rng.standard_normal(spec.n)
        x = solve_corner_banded(a, rhs)
        assert x.shape == (3, spec.n)
        for b in range(3):
            np.testing.assert_allclose(x[b], np.linalg.solve(a[b], rhs), atol=1e-9)

    def test_multi_rhs_against_single_dense(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=1)
        rhs = rng.standard_normal((5, spec.n))
        x = solve_corner_banded(a[0], rhs)
        assert x.shape == (5, spec.n)
        for k in range(5):
            np.testing.assert_allclose(x[k], np.linalg.solve(a[0], rhs[k]), atol=1e-9)

    def test_batched_rhs_against_batched_dense(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=4)
        rhs = rng.standard_normal((4, spec.n))
        x = solve_corner_banded(a, rhs)
        for b in range(4):
            np.testing.assert_allclose(x[b], np.linalg.solve(a[b], rhs[b]), atol=1e-9)

    def test_bad_rhs_shapes_raise(self, rng):
        a, spec = corner_banded_matrix(rng, nbatch=3)
        with pytest.raises(ValueError):
            solve_corner_banded(a, rng.standard_normal(spec.n - 1))
        with pytest.raises(ValueError):
            solve_corner_banded(a, rng.standard_normal((2, spec.n)))  # 2 != nbatch
        with pytest.raises(ValueError):
            solve_corner_banded(a, rng.standard_normal((3, spec.n, 2)))

    def test_infer_spec_covers_matrix(self, rng):
        a, spec = corner_banded_matrix(rng, n=40, kl=2, ku=3, corner=2)
        inferred = infer_spec(a)
        # inferred spec must at least permit a lossless fold
        fb = FoldedBanded.from_dense(a, inferred)
        np.testing.assert_array_equal(fb.to_dense(), a)

    def test_infer_spec_matches_elementwise_loop(self, rng):
        """The vectorized corner-extent computation agrees with the
        original per-non-zero Python loop on random corner-banded systems."""
        for _ in range(15):
            n = int(rng.integers(16, 48))
            kl = int(rng.integers(0, 4))
            ku = int(rng.integers(0, 4))
            corner = int(rng.integers(0, 4))
            dense, _ = corner_banded_matrix(rng, n=n, kl=kl, ku=ku, corner=corner, nbatch=2)
            spec = infer_spec(dense)
            # per-element reference for the corner extent
            nz = np.any(dense != 0.0, axis=0)
            i_idx, j_idx = np.nonzero(nz)
            ref_corner = 0
            for i, j in zip(i_idx, j_idx):
                if j - i > spec.ku:
                    ref_corner = max(ref_corner, j - i - spec.ku)
                elif i - j > spec.kl:
                    ref_corner = max(ref_corner, i - j - spec.kl)
            assert spec.corner == ref_corner
            # lossless fold must hold for every batch member
            np.testing.assert_array_equal(
                FoldedBanded.from_dense(dense, spec).to_dense(), dense
            )
