"""Helmholtz/Poisson collocation system assembly and solve tests."""

import numpy as np
import pytest

from repro.linalg.helmholtz import HelmholtzOperator, helmholtz_system, poisson_system


@pytest.fixture
def op(basis):
    return HelmholtzOperator(basis)


def manufactured(basis):
    """A wall-vanishing smooth function and its exact second derivative."""
    y = basis.collocation_points
    psi = (1 - y * y) * np.sin(2 * y)
    d2psi = -2 * np.sin(2 * y) - 8 * y * np.cos(2 * y) - 4 * (1 - y * y) * np.sin(2 * y)
    return psi, d2psi


class TestHelmholtzSolve:
    @pytest.mark.parametrize("ksq", [0.0, 1.0, 25.0, 400.0])
    def test_manufactured_solution(self, basis, op, ksq):
        """[I - c(D² - k²)] psi = R recovers psi from the exact R."""
        c = 0.02
        psi, d2psi = manufactured(basis)
        a_exact = basis.interpolate(psi)
        rhs = psi - c * (d2psi - ksq * psi)
        rhs[0] = rhs[-1] = 0.0
        lu = op.factor_helmholtz(np.array([ksq]), c)
        a = lu.solve(rhs[None])[0]
        vals = basis.values_at_collocation(a)
        # interpolation/collocation consistent to spline accuracy
        np.testing.assert_allclose(vals, psi, atol=5e-6)
        np.testing.assert_allclose(a, a_exact, atol=5e-6)

    def test_batched_over_wavenumbers(self, basis, op):
        ksq = np.array([0.0, 4.0, 100.0])
        c = 0.01
        psi, d2psi = manufactured(basis)
        rhs = np.stack([psi - c * (d2psi - k2 * psi) for k2 in ksq])
        rhs[:, 0] = rhs[:, -1] = 0.0
        sols = op.factor_helmholtz(ksq, c).solve(rhs)
        for s in sols:
            np.testing.assert_allclose(basis.values_at_collocation(s), psi, atol=5e-6)

    def test_per_mode_c_values(self, basis, op):
        """c may vary across the batch (different RK coefficients)."""
        ksq = np.array([4.0, 4.0])
        c = np.array([0.01, 0.05])
        psi, d2psi = manufactured(basis)
        rhs = np.stack([psi - ci * (d2psi - 4.0 * psi) for ci in c])
        rhs[:, 0] = rhs[:, -1] = 0.0
        sols = op.factor_helmholtz(ksq, c).solve(rhs)
        for s in sols:
            np.testing.assert_allclose(basis.values_at_collocation(s), psi, atol=5e-6)

    def test_dirichlet_values_enter_via_rhs(self, basis, op):
        """Unit BC data produces a solution equal to 1 at that wall."""
        lu = op.factor_helmholtz(np.array([9.0]), 0.1)
        rhs = np.zeros((1, basis.n))
        rhs[0, -1] = 1.0
        a = lu.solve(rhs)[0]
        vals = basis.values_at_collocation(a)
        assert abs(vals[-1] - 1.0) < 1e-12
        assert abs(vals[0]) < 1e-12


class TestPoissonSolve:
    @pytest.mark.parametrize("ksq", [1.0, 16.0, 256.0])
    def test_manufactured_solution(self, basis, op, ksq):
        psi, d2psi = manufactured(basis)
        rhs = d2psi - ksq * psi
        rhs[0] = rhs[-1] = 0.0
        a = op.factor_poisson(np.array([ksq])).solve(rhs[None])[0]
        np.testing.assert_allclose(basis.values_at_collocation(a), psi, atol=5e-6)

    def test_k0_pure_second_derivative(self, basis, op):
        """k²=0: pure D² with Dirichlet rows — still nonsingular and exact."""
        y = basis.collocation_points
        psi = (1 - y * y)  # psi'' = -2
        rhs = np.full(basis.n, -2.0)
        rhs[0] = rhs[-1] = 0.0
        a = op.factor_poisson(np.array([0.0])).solve(rhs[None])[0]
        np.testing.assert_allclose(basis.values_at_collocation(a), psi, atol=1e-10)


class TestConvenienceWrappers:
    def test_one_shot_helmholtz(self, basis):
        lu = helmholtz_system(basis, np.array([4.0]), 0.01)
        assert lu.spec.n == basis.n

    def test_one_shot_poisson(self, basis):
        lu = poisson_system(basis, np.array([4.0]))
        assert lu.spec.n == basis.n
