"""TransformPipeline: equivalence to the naive reference, buffer reuse."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.transforms import (
    NaiveTransformBackend,
    SerialTransformBackend,
    from_quadrature_grid,
    to_quadrature_grid,
)
from repro.fft.pipeline import TransformPipeline
from repro.fft.plans import PlanFlags, Planner, available_backends

GRIDS = [(16, 10, 16), (16, 9, 24), (8, 8, 8), (24, 11, 16), (32, 17, 32)]


def random_fields(grid, seed=0, n=1):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(grid.spectral_shape)
        for _ in range(n)
    ]


class TestAgainstNaiveReference:
    @pytest.mark.parametrize("shape", GRIDS)
    def test_numpy_estimate_is_bit_for_bit(self, shape):
        """The default pipeline reproduces the naive chain exactly."""
        g = ChannelGrid(*shape)
        pipe = TransformPipeline(g, backend="numpy", flags=PlanFlags.ESTIMATE, planner=Planner())
        for f in random_fields(g, seed=3, n=2):
            phys = pipe.to_physical(f)
            np.testing.assert_array_equal(phys, to_quadrature_grid(f, g))
            np.testing.assert_array_equal(pipe.from_physical(phys), from_quadrature_grid(phys, g))

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("shape", [(16, 10, 16), (24, 9, 24)])
    def test_measured_backends_match_reference(self, backend, shape):
        """MEASURE-planned strategies on every backend agree to roundoff."""
        g = ChannelGrid(*shape)
        pipe = TransformPipeline(
            g, backend=backend, workers=2, flags=PlanFlags.MEASURE, planner=Planner()
        )
        (f,) = random_fields(g, seed=5)
        phys = pipe.to_physical(f)
        ref = to_quadrature_grid(f, g)
        np.testing.assert_allclose(phys, ref, rtol=0, atol=1e-12 * np.abs(ref).max())
        spec = pipe.from_physical(ref)
        sref = from_quadrature_grid(ref, g)
        np.testing.assert_allclose(spec, sref, rtol=0, atol=1e-12 * np.abs(sref).max())

    @pytest.mark.parametrize("shape", GRIDS)
    def test_roundtrip_identity(self, shape):
        g = ChannelGrid(*shape)
        pipe = TransformPipeline(g, planner=Planner())
        rng = np.random.default_rng(11)
        f = rng.standard_normal(g.spectral_shape) + 1j * rng.standard_normal(g.spectral_shape)
        # real-representable mean mode so the forward transform is exact
        f[0, 0] = rng.standard_normal(g.ny)
        half = g.nz // 2
        for j in range(1, half):
            f[0, g.mz - j] = np.conj(f[0, j])
        back = pipe.from_physical(pipe.to_physical(f))
        np.testing.assert_allclose(back, f, atol=1e-11)

    def test_shape_validation(self):
        g = ChannelGrid(16, 10, 16)
        pipe = TransformPipeline(g, planner=Planner())
        with pytest.raises(ValueError):
            pipe.to_physical(np.zeros((3, 3, 3), complex))
        with pytest.raises(ValueError):
            pipe.from_physical(np.zeros((3, 3, 3)))


class TestBufferDiscipline:
    def test_repeated_substeps_allocate_no_new_workspace(self):
        """After one warm substep the workspace counters are frozen."""
        g = ChannelGrid(16, 10, 16)
        pipe = TransformPipeline(g, planner=Planner())
        fields = random_fields(g, seed=7, n=3)
        phys = pipe.to_physical_many(fields)
        products = [p * q for p, q in zip(phys, phys[::-1])] + [phys[0] * phys[0]] * 2
        pipe.from_physical_many(products)

        warm = pipe.counters.snapshot()
        # the two pads, the backward truncation scratch, and the numpy
        # backend's two destination-hint buffers
        assert warm["workspace_allocs"] == 5
        assert warm["workspace_bytes"] == pipe.workspace_bytes()
        for _ in range(3):  # three more "substeps"
            phys = pipe.to_physical_many(fields)
            pipe.from_physical_many(products)
        after = pipe.counters.snapshot()
        assert after["workspace_allocs"] == warm["workspace_allocs"]
        assert after["workspace_bytes"] == warm["workspace_bytes"]
        # ... while the execution counters kept moving
        assert after["transforms"] == warm["transforms"] + 3 * 16
        assert after["fields_forward"] == warm["fields_forward"] + 9
        assert after["fields_backward"] == warm["fields_backward"] + 15

    def test_outputs_are_caller_owned(self):
        """Pipeline outputs are fresh arrays, never workspace views."""
        g = ChannelGrid(16, 10, 16)
        pipe = TransformPipeline(g, planner=Planner())
        (f,) = random_fields(g, seed=1)
        p1 = pipe.to_physical(f)
        keep = p1.copy()
        pipe.to_physical(2.0 * f)  # would clobber p1 if it aliased workspace
        np.testing.assert_array_equal(p1, keep)
        s1 = pipe.from_physical(p1)
        skeep = s1.copy()
        pipe.from_physical(2.0 * p1)
        np.testing.assert_array_equal(s1, skeep)

    def test_dealias_zeros_survive_interleaved_reuse(self):
        """The pads' dealiasing bands are zeroed once at allocation;
        interleaving backward calls (which run in-place FFTs over their
        own scratch) must never dirty what a later forward call reads."""
        g = ChannelGrid(16, 10, 16)
        pipe = TransformPipeline(g, planner=Planner())
        for seed in range(3):
            (f,) = random_fields(g, seed=seed)
            phys = pipe.to_physical(f)
            np.testing.assert_array_equal(phys, to_quadrature_grid(f, g))
            spec = pipe.from_physical(phys)  # dirties the shared workspace
            np.testing.assert_array_equal(spec, from_quadrature_grid(phys, g))


class TestBatchedStacks:
    def test_many_equals_single(self):
        g = ChannelGrid(16, 10, 16)
        pipe = TransformPipeline(g, planner=Planner())
        fields = random_fields(g, seed=2, n=3)
        many = pipe.to_physical_many(fields)
        for f, p in zip(fields, many):
            np.testing.assert_array_equal(p, pipe.to_physical(f))
        back = pipe.from_physical_many(many)
        for p, s in zip(many, back):
            np.testing.assert_array_equal(s, pipe.from_physical(p))


class TestPlanSharing:
    def test_pipelines_share_the_plan_cache(self):
        g = ChannelGrid(16, 10, 16)
        planner = Planner()
        p1 = TransformPipeline(g, planner=planner)
        n_after_first = len(planner)
        p2 = TransformPipeline(g, planner=planner)
        assert len(planner) == n_after_first  # no new plans for same shapes
        assert p1.plans() == p2.plans()

    def test_pencil_and_serial_share_by_default(self):
        from repro.fft.plans import default_planner

        g = ChannelGrid(16, 10, 16)
        pipe = TransformPipeline(g)
        assert pipe.planner is default_planner()


class TestSerialBackendWiring:
    def test_backend_is_pipeline_backed(self):
        g = ChannelGrid(16, 10, 16)
        be = SerialTransformBackend(g)
        assert isinstance(be.pipeline, TransformPipeline)
        assert be.counters is be.pipeline.counters

    def test_backend_matches_naive_backend(self):
        g = ChannelGrid(16, 10, 16)
        be = SerialTransformBackend(g)
        naive = NaiveTransformBackend(g)
        (f,) = random_fields(g, seed=9)
        p = be.to_physical(f)
        np.testing.assert_array_equal(p, naive.to_physical(f))
        np.testing.assert_array_equal(be.from_physical(p), naive.from_physical(p))

    def test_dns_statistics_identical_to_naive_backend(self):
        """Same seed, same dt: the planned pipeline reproduces the naive
        trajectory bit-for-bit (the acceptance invariant of this PR)."""
        from repro.core import ChannelConfig, ChannelDNS
        from repro.core.timestepper import IMEXStepper

        cfg = ChannelConfig(nx=16, ny=20, nz=16, dt=2e-4, seed=4)
        dns = ChannelDNS(cfg)
        dns.initialize()
        ref = ChannelDNS(cfg)
        ref.stepper = IMEXStepper(
            ref.grid, nu=cfg.nu, dt=cfg.dt, forcing=cfg.forcing, scheme=cfg.scheme,
            backend=NaiveTransformBackend(ref.grid),
        )
        ref.initialize()
        dns.run(5)
        ref.run(5)
        np.testing.assert_array_equal(dns.state.v, ref.state.v)
        np.testing.assert_array_equal(dns.state.omega_y, ref.state.omega_y)
        np.testing.assert_array_equal(dns.state.u00, ref.state.u00)
        assert dns.kinetic_energy() == ref.kinetic_energy()
