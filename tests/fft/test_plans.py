"""FFTW-style planner tests."""

import numpy as np
import pytest

from repro.fft.plans import (
    MEASURE_RUNS,
    FFTPlan,
    PlanFlags,
    Planner,
    available_backends,
    default_planner,
    resolve_backend,
)


class TestFFTPlan:
    @pytest.mark.parametrize("kind", ["fft", "ifft", "rfft"])
    def test_matches_numpy(self, kind, rng):
        a = rng.standard_normal((16, 8))
        if kind in ("fft", "ifft"):
            a = a + 1j * rng.standard_normal((16, 8))
        plan = FFTPlan(kind, a.shape, axis=0)
        ref = getattr(np.fft, kind)(a, axis=0)
        np.testing.assert_allclose(plan.execute(a), ref, atol=1e-12)

    def test_irfft_with_nout(self, rng):
        a = rng.standard_normal((5, 9)) + 1j * rng.standard_normal((5, 9))
        plan = FFTPlan("irfft", a.shape, axis=1, nout=16)
        np.testing.assert_allclose(plan.execute(a), np.fft.irfft(a, n=16, axis=1), atol=1e-12)

    def test_measure_mode_picks_a_strategy(self, rng):
        plan = FFTPlan("fft", (64, 64), axis=0, flags=PlanFlags.MEASURE)
        assert plan.strategy in ("direct", "copy-contiguous")
        assert len(plan.measured) == 2

    def test_strategies_agree(self, rng):
        a = rng.standard_normal((32, 16)) + 0j
        plan = FFTPlan("fft", a.shape, axis=0)
        np.testing.assert_allclose(plan._direct(a), plan._copy_contiguous(a), atol=1e-12)

    def test_last_axis_has_single_candidate(self):
        plan = FFTPlan("fft", (8, 16), axis=-1, flags=PlanFlags.MEASURE)
        assert plan.strategy == "direct"

    def test_wrong_shape_raises(self, rng):
        plan = FFTPlan("fft", (8, 8), axis=0)
        with pytest.raises(ValueError):
            plan.execute(np.zeros((4, 8), complex))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            FFTPlan("dct", (8,), axis=0)


class TestPlanner:
    def test_cache_reuse(self):
        planner = Planner()
        p1 = planner.plan("fft", (8, 8), 0)
        p2 = planner.plan("fft", (8, 8), 0)
        assert p1 is p2

    def test_distinct_keys(self):
        planner = Planner()
        assert planner.plan("fft", (8, 8), 0) is not planner.plan("fft", (8, 8), 1)

    def test_execute_shortcut(self, rng):
        planner = Planner()
        a = rng.standard_normal((8, 4)) + 0j
        np.testing.assert_allclose(
            planner.execute("ifft", a, axis=0), np.fft.ifft(a, axis=0), atol=1e-13
        )

    def test_backend_keys_separate_entries(self):
        planner = Planner()
        p_np = planner.plan("fft", (8, 8), 0, backend="numpy")
        assert planner.plan("fft", (8, 8), 0, backend="numpy") is p_np
        if "scipy" in available_backends():
            assert planner.plan("fft", (8, 8), 0, backend="scipy") is not p_np

    def test_default_planner_is_a_singleton(self):
        assert default_planner() is default_planner()


class TestBackends:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("kind", ["fft", "ifft", "rfft"])
    def test_backends_match_numpy(self, backend, kind, rng):
        a = rng.standard_normal((12, 10))
        if kind in ("fft", "ifft"):
            a = a + 1j * rng.standard_normal((12, 10))
        plan = FFTPlan(kind, a.shape, axis=0, backend=backend, workers=2)
        ref = getattr(np.fft, kind)(a, axis=0)
        np.testing.assert_allclose(plan.execute(a), ref, atol=1e-12)

    def test_auto_resolves_to_an_available_backend(self):
        assert resolve_backend("auto") in available_backends()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("fftw")


class TestMeasurement:
    def test_measure_uses_best_of_n_runs(self, monkeypatch):
        """Planning must not be decided by one noisy sample: each candidate
        is timed MEASURE_RUNS times and the minimum wins."""
        calls = []
        real = FFTPlan._direct

        def counting_direct(self, a):
            calls.append("direct")
            return real(self, a)

        monkeypatch.setattr(FFTPlan, "_direct", counting_direct)
        FFTPlan("fft", (16, 16), axis=0, flags=PlanFlags.MEASURE)
        # one warm-up + MEASURE_RUNS timed runs for the direct candidate
        assert calls.count("direct") == 1 + MEASURE_RUNS

    def test_copy_contiguous_output_is_contiguous_and_reuses_scratch(self, rng):
        plan = FFTPlan("fft", (8, 16), axis=0)
        a = rng.standard_normal((8, 16)) + 0j
        out1 = plan._copy_contiguous(a)
        assert out1.flags["C_CONTIGUOUS"]
        scratch = plan._tlocal.buf
        out2 = plan._copy_contiguous(2.0 * a)
        assert plan._tlocal.buf is scratch  # persistent workspace
        np.testing.assert_allclose(out2, 2.0 * out1, atol=1e-12)
