"""Nyquist-free transforms and 3/2 dealiasing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.fourier import (
    complex_modes,
    fft_wavenumbers,
    forward_c2c,
    forward_r2c,
    inverse_c2c,
    inverse_c2r,
    pad_for_quadrature_c,
    pad_for_quadrature_r,
    quadrature_points,
    real_modes,
    rfft_wavenumbers,
    truncate_from_quadrature_c,
    truncate_from_quadrature_r,
)


class TestModeCounts:
    def test_real_modes(self):
        assert real_modes(16) == 8

    def test_complex_modes(self):
        assert complex_modes(16) == 15

    def test_quadrature_points(self):
        assert quadrature_points(16) == 24

    @pytest.mark.parametrize("bad", [3, 7, 2, 0])
    def test_odd_or_tiny_rejected(self, bad):
        with pytest.raises(ValueError):
            real_modes(bad)

    def test_storage_footprint_matches_physical(self):
        """N/2 complex modes = N reals: Nyquist dropping keeps footprint flat."""
        assert 2 * real_modes(64) == 64


class TestWavenumbers:
    def test_rfft_wavenumbers(self):
        np.testing.assert_allclose(rfft_wavenumbers(8), [0, 1, 2, 3])

    def test_fft_wavenumbers_order(self):
        np.testing.assert_allclose(fft_wavenumbers(8), [0, 1, 2, 3, -3, -2, -1])

    def test_domain_length_scaling(self):
        np.testing.assert_allclose(rfft_wavenumbers(8, length=np.pi), [0, 2, 4, 6])


class TestRealTransforms:
    def test_roundtrip_is_nyquist_projection(self, rng):
        n = 32
        u = rng.standard_normal((3, n))
        u2 = inverse_c2r(forward_r2c(u), n)
        ref = np.fft.rfft(u, axis=-1)
        ref[..., -1] = 0.0
        np.testing.assert_allclose(u2, np.fft.irfft(ref, n=n), atol=1e-13)

    def test_roundtrip_exact_for_bandlimited(self, rng):
        """Fields with no Nyquist content round-trip exactly."""
        n = 16
        x = np.arange(n) * 2 * np.pi / n
        u = 1 + np.cos(3 * x) + np.sin(7 * x)
        np.testing.assert_allclose(inverse_c2r(forward_r2c(u), n), u, atol=1e-13)

    def test_coefficients_are_mathematical(self):
        n = 16
        x = np.arange(n) * 2 * np.pi / n
        uh = forward_r2c(2.5 * np.cos(3 * x))
        # 2.5 cos(3x) = 1.25 e^{3ix} + c.c.
        assert abs(uh[3] - 1.25) < 1e-13
        assert np.abs(np.delete(uh, 3)).max() < 1e-13

    def test_axis_argument(self, rng):
        u = rng.standard_normal((8, 5))
        uh = forward_r2c(u, axis=0)
        assert uh.shape == (4, 5)
        np.testing.assert_allclose(uh[:, 2], forward_r2c(u[:, 2]), atol=1e-14)

    def test_quadrature_evaluation_preserves_modes(self, rng):
        """Pad -> physical -> transform -> truncate is the identity."""
        n = 16
        uh = rng.standard_normal(n // 2) + 1j * rng.standard_normal(n // 2)
        uh[0] = uh[0].real  # DC mode of a real field is real
        m = quadrature_points(n)
        phys = np.fft.irfft(pad_for_quadrature_r(uh, n) * m, n=m)
        back = truncate_from_quadrature_r(np.fft.rfft(phys) / m, n)
        np.testing.assert_allclose(back, uh, atol=1e-12)

    def test_pad_wrong_size_raises(self, rng):
        with pytest.raises(ValueError):
            pad_for_quadrature_r(np.zeros(5, complex), 16)

    def test_inverse_too_small_raises(self):
        with pytest.raises(ValueError):
            inverse_c2r(np.zeros(10, complex), 8)


class TestComplexTransforms:
    def test_roundtrip_is_nyquist_projection(self, rng):
        n = 16
        u = rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))
        u2 = inverse_c2c(forward_c2c(u), n)
        ref = np.fft.fft(u, axis=-1)
        ref[..., n // 2] = 0.0
        np.testing.assert_allclose(u2, np.fft.ifft(ref), atol=1e-13)

    def test_negative_modes_preserved(self):
        n = 16
        x = np.arange(n) * 2 * np.pi / n
        u = np.exp(-5j * x)
        uh = forward_c2c(u)
        k = fft_wavenumbers(n)
        idx = np.argmin(np.abs(k + 5))
        assert abs(uh[idx] - 1.0) < 1e-13

    def test_quadrature_roundtrip(self, rng):
        n = 16
        m = quadrature_points(n)
        uh = rng.standard_normal(n - 1) + 1j * rng.standard_normal(n - 1)
        phys = np.fft.ifft(pad_for_quadrature_c(uh, n) * m)
        back = truncate_from_quadrature_c(np.fft.fft(phys) / m, n)
        np.testing.assert_allclose(back, uh, atol=1e-12)


class TestDealiasing:
    @given(k1=st.integers(min_value=1, max_value=7), k2=st.integers(min_value=1, max_value=7))
    @settings(max_examples=20, deadline=None)
    def test_no_aliasing_into_retained_modes(self, k1, k2):
        """Products of retained modes never alias back into retained modes."""
        n = 16
        m = quadrature_points(n)
        x = np.arange(m) * 2 * np.pi / m
        u1 = np.cos(k1 * x)
        u2 = np.cos(k2 * x)
        prod_modes = truncate_from_quadrature_r((np.fft.rfft(u1 * u2) / m)[None], n)[0]
        # exact product: cos(k1 x) cos(k2 x) = ½cos(|k1-k2|x) + ½cos((k1+k2)x);
        # the stored e^{ikx} coefficient of ½cos(kx) is ¼ (½ at k = 0).
        expected = np.zeros(n // 2)
        for k in (abs(k1 - k2), k1 + k2):
            if k == 0:
                expected[0] += 0.5
            elif k < n // 2:
                expected[k] += 0.25
        np.testing.assert_allclose(prod_modes.real, expected, atol=1e-12)
        np.testing.assert_allclose(prod_modes.imag, 0.0, atol=1e-12)

    def test_highest_mode_squared_is_alias_free(self):
        """The classic 3/2-rule check: (highest mode)² leaves only the mean."""
        n = 16
        m = quadrature_points(n)
        uh = np.zeros(n // 2, complex)
        uh[-1] = 1.0
        phys = np.fft.irfft(pad_for_quadrature_r(uh, n) * m, n=m)
        ph = truncate_from_quadrature_r((np.fft.rfft(phys**2) / m)[None], n)[0]
        assert abs(ph[0] - 2.0) < 1e-12  # (2 cos kx)² has mean 2
        assert np.abs(ph[1:]).max() < 1e-12
