"""Schema contract: validation, round-trips, and the documented fields."""

import json

import pytest

from repro.telemetry.schema import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    STEP_FIELDS,
    SUMMARY_FIELDS,
    read_stream,
    validate_record,
)


def _minimal_step():
    return {
        "type": "step",
        "schema": SCHEMA_VERSION,
        "step": 1,
        "time": 1e-4,
        "dt": 1e-4,
        "wall_s": 0.01,
        "cfl": 0.05,
        "divergence": None,
        "rank": 0,
        "nranks": 1,
        "sections": {"fft": {"s": 0.004, "calls": 24}},
    }


def _minimal_event():
    return {
        "type": "event",
        "schema": SCHEMA_VERSION,
        "t_unix": 1.7e9,
        "step": 5,
        "kind": "failure",
        "detail": "UnstableError: boom",
        "attempt": 1,
        "info": {},
        "rank": 0,
        "nranks": 1,
    }


def _minimal_summary():
    return {
        "type": "summary",
        "schema": SCHEMA_VERSION,
        "steps": 10,
        "records": 10,
        "events": 0,
        "wall_s": 0.5,
        "sections": {},
        "overhead_s": 0.001,
        "overhead_frac": 0.002,
        "rank": 0,
        "nranks": 1,
    }


@pytest.mark.parametrize("make", [_minimal_step, _minimal_event, _minimal_summary])
def test_valid_records_pass(make):
    validate_record(make())


@pytest.mark.parametrize("make", [_minimal_step, _minimal_event, _minimal_summary])
def test_missing_required_field_rejected(make):
    rec = make()
    fields = {"step": STEP_FIELDS, "event": EVENT_FIELDS, "summary": SUMMARY_FIELDS}[rec["type"]]
    for name, (required, _) in fields.items():
        if not required:
            continue
        broken = dict(rec)
        del broken[name]
        with pytest.raises(ValueError, match=name):
            validate_record(broken)


def test_undocumented_field_rejected():
    rec = _minimal_step()
    rec["surprise"] = 1
    with pytest.raises(ValueError, match="undocumented"):
        validate_record(rec)


def test_wrong_schema_version_rejected():
    rec = _minimal_step()
    rec["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema version"):
        validate_record(rec)


def test_bad_section_cell_rejected():
    rec = _minimal_step()
    rec["sections"] = {"fft": {"seconds": 1.0}}
    with pytest.raises(ValueError, match="fft"):
        validate_record(rec)


def test_unknown_type_rejected():
    with pytest.raises(ValueError, match="unknown record type"):
        validate_record({"type": "mystery", "schema": SCHEMA_VERSION})


def test_stream_round_trip(tmp_path):
    records = [_minimal_step(), _minimal_event(), _minimal_summary()]
    path = tmp_path / "stream.jsonl"
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
    assert list(read_stream(path)) == records


def test_read_stream_flags_bad_line(tmp_path):
    path = tmp_path / "stream.jsonl"
    path.write_text(json.dumps(_minimal_step()) + "\nnot json\n")
    with pytest.raises(ValueError, match="not valid JSON"):
        list(read_stream(path))


def test_read_stream_flags_invalid_record(tmp_path):
    rec = _minimal_step()
    del rec["dt"]
    path = tmp_path / "stream.jsonl"
    path.write_text(json.dumps(rec) + "\n")
    with pytest.raises(ValueError, match="dt"):
        list(read_stream(path))
    # validation can be switched off for forensic reads
    assert len(list(read_stream(path, validate=False))) == 1


def test_every_documented_field_has_description():
    for fields in (STEP_FIELDS, EVENT_FIELDS, SUMMARY_FIELDS):
        for name, (_, description) in fields.items():
            assert description.strip(), name


def test_operator_guide_documents_every_field():
    """docs/observability.md must cover every emitted field by name."""
    import pathlib

    doc = (
        pathlib.Path(__file__).resolve().parents[2] / "docs" / "observability.md"
    ).read_text()
    for fields in (STEP_FIELDS, EVENT_FIELDS, SUMMARY_FIELDS):
        for name in fields:
            assert f"`{name}`" in doc, f"docs/observability.md missing field {name!r}"
