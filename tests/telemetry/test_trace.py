"""TraceWriter: Chrome trace-event validity, capping, merging."""

import json
import time

from repro.instrument import SectionTimers
from repro.telemetry.trace import TraceWriter, merge_traces


def test_trace_file_is_valid_chrome_json(tmp_path):
    tw = TraceWriter(pid=0, process_name="dns")
    with tw.span("outer"):
        with tw.span("inner"):
            pass
    tw.instant("marker")
    path = tw.write(tmp_path / "trace.json")
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert meta[0]["args"]["name"] == "dns"
    assert {e["name"] for e in spans} == {"outer", "inner", "marker"}
    for e in spans:
        assert e["ts"] >= 0.0
        assert e["dur"] >= 0.0
        assert e["pid"] == 0
    # spans are appended at completion: end times never go backwards
    ends = [e["ts"] + e["dur"] for e in spans]
    assert ends == sorted(ends)


def test_nesting_by_time_containment():
    tw = TraceWriter()
    with tw.span("step"):
        with tw.span("solve"):
            time.sleep(0.001)
    by_name = {e["name"]: e for e in tw.events()}
    inner, outer = by_name["solve"], by_name["step"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6


def test_section_timers_feed_tracer():
    timers = SectionTimers()
    tw = TraceWriter()
    timers.tracer = tw
    with timers.section(SectionTimers.FFT):
        pass
    with timers.section(SectionTimers.SOLVE):
        pass
    assert {e["name"] for e in tw.events()} == {SectionTimers.FFT, SectionTimers.SOLVE}
    # detaching stops collection without touching the timers
    timers.tracer = None
    with timers.section(SectionTimers.FFT):
        pass
    assert len(tw) == 2
    assert timers.calls[SectionTimers.FFT] == 2


def test_max_events_cap_drops_not_grows():
    tw = TraceWriter(max_events=3)
    for i in range(10):
        tw.instant(f"e{i}")
    assert len(tw) == 3
    assert tw.dropped == 7
    doc_events = tw.events()
    assert len(doc_events) == 3


def test_merge_traces_keeps_rank_lanes(tmp_path):
    paths = []
    for rank in range(2):
        tw = TraceWriter(pid=rank, process_name=f"rank {rank}")
        with tw.span("step"):
            pass
        paths.append(tw.write(tmp_path / f"trace-rank{rank:03d}.json"))
    merged = merge_traces(paths, tmp_path / "merged.json")
    doc = json.loads(merged.read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["pid"] for e in spans} == {0, 1}
    # each file is re-based to its own earliest span
    for rank in range(2):
        assert min(e["ts"] for e in spans if e["pid"] == rank) == 0.0
    assert doc["otherData"]["inputs"] == 2
