"""Perf-regression harness: record/check round-trip, injected-slowdown
self-test, the committed baseline file, and the CLI."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.telemetry.baseline import (
    DEFAULT_BASELINE,
    HOT_PATH_CASES,
    BenchCase,
    check_against,
    format_check_report,
    load_baselines,
    measure,
    record_baselines,
)

REPO = pathlib.Path(__file__).resolve().parents[2]

# fast synthetic cases: the harness logic is under test, not the hot paths
FAST_CASES = (
    BenchCase("noop_a", lambda: (lambda: None), guards="test case a"),
    BenchCase("noop_b", lambda: (lambda: sum(range(50))), guards="test case b"),
)

FAST = dict(repeats=3, min_time=0.005)


def _pad_baseline(path, factor=3.0):
    """Slow the recorded baseline down by `factor`.

    Checks against the padded file pin the harness logic regardless of
    machine load: a pass needs only "not `factor`x slower than recorded",
    and an injected slowdown beyond `factor` still fails.
    """
    doc = json.loads(path.read_text())
    for case in doc["cases"].values():
        case["median_s"] *= factor
        case["normalized"] *= factor
    path.write_text(json.dumps(doc))


def test_measure_shape():
    doc = measure(FAST_CASES, **FAST)
    assert doc["calibration_s"] > 0
    assert set(doc["cases"]) == {"noop_a", "noop_b"}
    for case in doc["cases"].values():
        assert case["median_s"] > 0
        assert case["normalized"] == pytest.approx(case["median_s"] / doc["calibration_s"])


def test_record_then_check_passes(tmp_path):
    path = tmp_path / "baselines.json"
    doc = record_baselines(path, FAST_CASES, **FAST)
    assert load_baselines(path) == doc
    _pad_baseline(path)
    results = check_against(load_baselines(path), cases=FAST_CASES, **FAST)
    assert all(r.status in ("ok", "improved") for r in results)


def test_injected_slowdown_is_detected(tmp_path):
    path = tmp_path / "baselines.json"
    record_baselines(path, FAST_CASES, **FAST)
    _pad_baseline(path)
    results = check_against(
        load_baselines(path), cases=FAST_CASES, inject_slowdown=20.0, **FAST
    )
    regressed = [r for r in results if r.status == "regressed"]
    assert regressed, results
    # the report names the case and quantifies the change in percent
    report = format_check_report(results, tolerance=0.10)
    assert "FAIL" in report
    assert regressed[0].name in report
    assert "%" in report
    for r in regressed:
        assert r.change > 0.10


def test_new_case_is_not_a_failure(tmp_path):
    path = tmp_path / "baselines.json"
    record_baselines(path, FAST_CASES[:1], **FAST)
    _pad_baseline(path)
    results = check_against(load_baselines(path), cases=FAST_CASES, **FAST)
    by_name = {r.name: r for r in results}
    assert by_name["noop_b"].status == "new"
    assert "OK" in format_check_report(results, tolerance=0.10)


def test_committed_baseline_is_valid():
    doc = load_baselines(DEFAULT_BASELINE)
    assert set(doc["cases"]) == {c.name for c in HOT_PATH_CASES}
    for case in doc["cases"].values():
        assert case["median_s"] > 0 and case["normalized"] > 0
    assert 0 < doc["tolerance"] < 1


def test_check_perf_cli_inject_slowdown_fails(tmp_path):
    """End-to-end: the script exits non-zero on an injected slowdown.

    Records a baseline in-process, then pads it 3x slower than measured:
    the plain run passes unless this machine slowed >3x between record
    and check, and the 20x injected run fails unless it sped up >6x —
    both far outside any plausible load jitter, so the exit codes pin
    the script's logic, not the box's weather.
    """
    path = tmp_path / "baselines.json"
    record_baselines(path, HOT_PATH_CASES, repeats=3, min_time=0.02)
    _pad_baseline(path)
    script = REPO / "scripts" / "check_perf.py"
    common = [sys.executable, str(script), "--baseline", str(path),
              "--repeats", "3", "--min-time", "0.02"]
    ok = subprocess.run(common, capture_output=True, text=True)
    assert ok.returncode == 0, ok.stdout + ok.stderr
    bad = subprocess.run(common + ["--inject-slowdown", "20.0"],
                         capture_output=True, text=True)
    assert bad.returncode == 1, bad.stdout + bad.stderr
    assert "FAIL" in bad.stdout
    # report mode never fails, even with the slowdown injected
    rep = subprocess.run(common + ["--inject-slowdown", "20.0", "--report"],
                         capture_output=True, text=True)
    assert rep.returncode == 0, rep.stdout + rep.stderr


def test_missing_baseline_exit_codes(tmp_path):
    script = REPO / "scripts" / "check_perf.py"
    missing = tmp_path / "nope.json"
    out = subprocess.run(
        [sys.executable, str(script), "--baseline", str(missing)],
        capture_output=True, text=True,
    )
    assert out.returncode == 2
    out = subprocess.run(
        [sys.executable, str(script), "--baseline", str(missing), "--report"],
        capture_output=True, text=True,
    )
    assert out.returncode == 0
