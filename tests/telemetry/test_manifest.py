"""Run manifest: fingerprints, contents, round-trip."""

from repro.core.solver import ChannelConfig
from repro.telemetry.manifest import (
    MANIFEST_NAME,
    build_manifest,
    config_fingerprint,
    read_manifest,
    write_manifest,
)


def test_fingerprint_is_stable_and_discriminating():
    a = ChannelConfig(nx=16, ny=17, nz=16)
    _, fp1 = config_fingerprint(a)
    _, fp2 = config_fingerprint(ChannelConfig(nx=16, ny=17, nz=16))
    _, fp3 = config_fingerprint(ChannelConfig(nx=32, ny=17, nz=16))
    assert fp1 == fp2
    assert fp1 != fp3


def test_fingerprint_accepts_dict_and_none():
    d, fp = config_fingerprint({"nx": 8})
    assert d == {"nx": 8} and len(fp) == 64
    d, _ = config_fingerprint(None)
    assert d == {}


def test_manifest_contents(tmp_path):
    cfg = ChannelConfig(nx=16, ny=17, nz=16, dt=3e-4)
    doc = build_manifest(cfg, nranks=4, grid=(2, 2), extra={"campaign": "t1"})
    assert doc["config"]["nx"] == 16
    assert doc["config"]["dt"] == 3e-4
    assert doc["nranks"] == 4
    assert doc["process_grid"] == [2, 2]
    assert doc["extra"] == {"campaign": "t1"}
    assert set(doc["versions"]) >= {"python", "numpy"}
    assert "platform" in doc["machine"]
    assert "rev" in doc["git"]  # may be None outside a work tree, but present

    write_manifest(tmp_path, doc)
    assert (tmp_path / MANIFEST_NAME).exists()
    assert read_manifest(tmp_path) == doc
