"""Telemetry attachment across the driver stack: distributed, supervised, soak."""

import json

from repro.core.checkpoint import CheckpointRotation
from repro.core.health import UnstableError
from repro.core.solver import ChannelConfig, ChannelDNS
from repro.core.supervisor import RunSupervisor, SupervisorPolicy
from repro.mpi.simmpi import run_spmd
from repro.pencil.distributed import DistributedChannelDNS, run_supervised_spmd
from repro.telemetry import merge_traces, read_manifest, read_stream

CFG = ChannelConfig(nx=16, ny=17, nz=16, dt=2e-4, seed=3, init_amplitude=0.5)


def test_distributed_per_rank_streams(tmp_path):
    tel = tmp_path / "tel"

    def prog(comm):
        dns = DistributedChannelDNS(comm, CFG, pa=2, pb=2, telemetry=tel)
        dns.initialize()
        dns.run(3)
        dns.finalize_telemetry()
        return dns.recorder.counters.records

    records = run_spmd(4, prog)
    assert records == [3, 3, 3, 3]
    for rank in range(4):
        recs = list(read_stream(tel / f"telemetry-rank{rank:03d}.jsonl"))
        steps = [r for r in recs if r["type"] == "step"]
        assert [r["step"] for r in steps] == [1, 2, 3]
        assert steps[0]["rank"] == rank and steps[0]["nranks"] == 4
        # world-shared message totals and the pencil sections are present
        assert steps[0]["mpi"]["messages"] > 0
        assert steps[0]["sections"]["transpose"]["calls"] > 0
        assert recs[-1]["type"] == "summary"
    # one manifest (rank 0), carrying the process grid
    doc = read_manifest(tel)
    assert doc["nranks"] == 4 and doc["process_grid"] == [2, 2]
    merged = merge_traces(
        [tel / f"trace-rank{r:03d}.json" for r in range(4)], tel / "merged.json"
    )
    spans = [e for e in json.loads(merged.read_text())["traceEvents"] if e["ph"] == "X"]
    assert {e["pid"] for e in spans} == {0, 1, 2, 3}


def test_supervisor_mirrors_recovery_log(tmp_path):
    dns = ChannelDNS(CFG, telemetry=tmp_path / "tel")
    dns.initialize()
    sup = RunSupervisor(
        dns,
        CheckpointRotation(tmp_path / "ckpt", keep=2),
        policy=SupervisorPolicy(checkpoint_every=2, max_retries=2),
    )
    assert sup.recorder is dns.recorder  # picked up from the driver

    fired = []

    def inject(d):
        if d.step_count == 3 and not fired:
            fired.append(True)
            raise UnstableError("injected", step=d.step_count)

    final = sup.run(5, callback=inject)
    final.finalize_telemetry()
    # the rollback replaced the driver; the recorder followed it
    assert final is not dns and final.recorder is sup.recorder

    recs = list(read_stream(tmp_path / "tel" / "telemetry.jsonl"))
    events = [r["kind"] for r in recs if r["type"] == "event"]
    assert events == [e.kind for e in sup.log]
    assert {"failure", "rollback", "dt_reduction"} <= set(events)
    steps = [r["step"] for r in recs if r["type"] == "step"]
    assert steps[-1] == 5
    # rollback rewinds the stream's step sequence, then it recovers
    assert 3 in steps and steps.count(3) == 2
    # recovery counter deltas ride the step records
    post = [r for r in recs if r["type"] == "step"]
    assert sum(r.get("recovery", {}).get("rollbacks", 0) for r in post) == 1


def test_supervised_spmd_attempt_streams_and_job_events(tmp_path):
    from repro.mpi.simmpi import FaultEvent, FaultPlan

    tel = tmp_path / "tel"
    plan = FaultPlan([FaultEvent(action="kill", rank=1, op=None, call=30)])
    full, log = run_supervised_spmd(
        4,
        CFG,
        2,
        2,
        4,
        tmp_path / "ckpt",
        checkpoint_every=2,
        fault_plans=[plan],
        telemetry=tel,
    )
    assert full is not None
    # job-level stream: one restart, one complete
    ev = [r for r in read_stream(tel / "events.jsonl") if r["type"] == "event"]
    kinds = [e["kind"] for e in ev]
    assert kinds.count("restart") == 1 and kinds[-1] == "complete"
    assert all(e["rank"] == -1 for e in ev)
    # both attempts left per-rank streams behind (attempt 0 crashed)
    for attempt in (0, 1):
        sub = tel / f"attempt-{attempt:02d}"
        assert (sub / "telemetry-rank000.jsonl").exists(), attempt
        assert (sub / "manifest.json").exists()
    # the crashed attempt still closed its surviving ranks' streams
    recs = list(read_stream(tel / "attempt-01" / "telemetry-rank000.jsonl"))
    assert recs[-1]["type"] == "summary"


def test_chaos_soak_telemetry(tmp_path):
    from repro.chaos import run_chaos_soak

    results = run_chaos_soak(
        [3], tmp_path / "work", n_steps=4, telemetry=tmp_path / "tel"
    )
    assert len(results) == 1
    ev = [r for r in read_stream(tmp_path / "tel" / "events.jsonl") if r["type"] == "event"]
    kinds = [e["kind"] for e in ev]
    assert kinds == ["soak_result", "soak_summary"]
    assert ev[0]["info"]["seed"] == 3
    assert ev[1]["info"]["runs"] == 1
    # the seed's supervised job recorded full per-attempt streams
    assert (tmp_path / "tel" / "soak-00003" / "attempt-00" / "manifest.json").exists()
