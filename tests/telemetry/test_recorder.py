"""RunRecorder: stream contents, zero-allocation discipline, lifecycle."""

import json

import pytest

from repro.core.solver import ChannelConfig, ChannelDNS
from repro.telemetry import RunRecorder, TelemetryConfig, read_manifest, read_stream

CFG = ChannelConfig(nx=16, ny=17, nz=16, dt=2e-4, seed=3, init_amplitude=0.5)


def _run(tmp_path, nsteps=6, **tel_kwargs):
    tel = TelemetryConfig(directory=tmp_path / "tel", **tel_kwargs)
    dns = ChannelDNS(CFG, telemetry=tel)
    dns.initialize()
    dns.run(nsteps)
    dns.finalize_telemetry()
    return dns, tmp_path / "tel"


def test_stream_is_valid_and_complete(tmp_path):
    dns, tel = _run(tmp_path, nsteps=6)
    recs = list(read_stream(tel / "telemetry.jsonl"))  # read_stream validates
    steps = [r for r in recs if r["type"] == "step"]
    assert [r["step"] for r in steps] == [1, 2, 3, 4, 5, 6]
    assert recs[-1]["type"] == "summary"
    first = steps[0]
    assert first["dt"] == CFG.dt
    assert first["rank"] == 0 and first["nranks"] == 1
    assert first["cfl"] is not None and first["cfl"] > 0
    # the serial driver exposes transform and solve counters
    assert first["transforms"]["transforms"] > 0
    assert first["solve"]["solves"] > 0
    # the serial stepper's timed sections (fft/transpose are pencil-only)
    for name in ("nonlinear_products", "ns_advance", "solve"):
        assert first["sections"][name]["calls"] > 0, name


def test_section_deltas_sum_to_timer_totals(tmp_path):
    dns, tel = _run(tmp_path, nsteps=4)
    recs = list(read_stream(tel / "telemetry.jsonl"))
    steps = [r for r in recs if r["type"] == "step"]
    summary = recs[-1]
    timers = dns.stepper.timers
    for name, total in timers.elapsed.items():
        streamed = sum(r["sections"][name]["s"] for r in steps)
        assert streamed == pytest.approx(total, rel=1e-9)
        assert summary["sections"][name]["s"] == pytest.approx(total, rel=1e-9)
        assert sum(r["sections"][name]["calls"] for r in steps) == timers.calls[name]


def test_workspace_allocs_freeze_after_first_record(tmp_path):
    tel = TelemetryConfig(directory=tmp_path / "tel")
    dns = ChannelDNS(CFG, telemetry=tel)
    dns.initialize()
    dns.run(2)  # warm-up: every scratch slot exists after two records
    rec = dns.recorder
    frozen = rec.counters.workspace_allocs
    dns.run(4)
    assert rec.counters.workspace_allocs == frozen
    assert rec.counters.records == 6
    dns.finalize_telemetry()


def test_overhead_is_tracked_and_in_summary(tmp_path):
    dns, tel = _run(tmp_path, nsteps=6)
    rec = dns.recorder
    assert rec.counters.overhead_seconds > 0
    frac = rec.overhead_fraction()
    assert frac is not None and 0 < frac < 1
    summary = list(read_stream(tel / "telemetry.jsonl"))[-1]
    assert summary["overhead_frac"] == pytest.approx(frac)


def test_every_cadence(tmp_path):
    dns, tel = _run(tmp_path, nsteps=6, every=3)
    steps = [r["step"] for r in read_stream(tel / "telemetry.jsonl") if r["type"] == "step"]
    assert steps == [3, 6]


def test_divergence_cadence(tmp_path):
    dns, tel = _run(tmp_path, nsteps=4, divergence_every=2)
    steps = [r for r in read_stream(tel / "telemetry.jsonl") if r["type"] == "step"]
    assert [r["divergence"] is not None for r in steps] == [False, True, False, True]
    sampled = [r["divergence"] for r in steps if r["divergence"] is not None]
    assert all(d < 1e-8 for d in sampled)  # solenoidal scheme


def test_trace_written_and_valid(tmp_path):
    dns, tel = _run(tmp_path, nsteps=3)
    doc = json.loads((tel / "trace.json").read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in spans} >= {"ns_advance", "solve", "nonlinear_products"}
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in spans)
    # recorder detached the tracer on close
    assert dns.stepper.timers.tracer is None


def test_manifest_written(tmp_path):
    dns, tel = _run(tmp_path, nsteps=2)
    doc = read_manifest(tel)
    assert doc["config"]["nx"] == CFG.nx
    assert doc["nranks"] == 1
    assert doc["config_fingerprint"]


def test_trace_disabled(tmp_path):
    dns, tel = _run(tmp_path, nsteps=2, trace=False)
    assert not (tel / "trace.json").exists()
    assert dns.recorder.trace is None


def test_record_event_and_close_idempotent(tmp_path):
    tel_dir = tmp_path / "tel"
    rec = RunRecorder(tel_dir)
    rec.record_event("custom_kind", step=7, detail="hello", info={"a": 1})
    rec.close()
    rec.close()  # idempotent
    recs = list(read_stream(tel_dir / "telemetry.jsonl"))
    ev = recs[0]
    assert ev["kind"] == "custom_kind" and ev["step"] == 7 and ev["info"] == {"a": 1}
    assert recs[-1]["type"] == "summary"


def test_recorder_accepts_path_and_rejects_junk(tmp_path):
    dns = ChannelDNS(CFG, telemetry=tmp_path / "via_path")
    assert dns.recorder is not None
    dns.initialize()
    dns.run(1)
    dns.finalize_telemetry()
    assert (tmp_path / "via_path" / "telemetry.jsonl").exists()
    with pytest.raises(TypeError):
        TelemetryConfig.coerce(42)


def test_config_validation():
    with pytest.raises(ValueError):
        TelemetryConfig(every=0)
    with pytest.raises(ValueError):
        TelemetryConfig(flush_every=0)


def test_nan_diagnostics_serialize_as_null(tmp_path):
    dns = ChannelDNS(CFG, telemetry=tmp_path / "tel")
    dns.initialize()
    dns.run(1)
    dns.state.v[:] = float("nan")
    dns.stepper.last_cfl_speeds = (float("nan"),) * 3
    dns.recorder.record_step(dns, force=True)
    dns.finalize_telemetry()
    steps = [r for r in read_stream(tmp_path / "tel" / "telemetry.jsonl") if r["type"] == "step"]
    assert steps[-1]["cfl"] is None  # not NaN — the stream stays valid JSON


def test_for_attempt_subdirectories(tmp_path):
    rec = RunRecorder(tmp_path / "tel", rank=2, nranks=4)
    sub = rec.for_attempt(3)
    assert sub.directory == tmp_path / "tel" / "attempt-03"
    assert sub.rank == 2 and sub.nranks == 4
