"""Stream → Table-9/10 breakdown regeneration."""

import subprocess
import sys

import pytest

from repro.core.solver import ChannelConfig, ChannelDNS
from repro.instrument import SectionTimers
from repro.telemetry.report import breakdown, format_breakdown

CFG = ChannelConfig(nx=16, ny=17, nz=16, dt=2e-4, seed=3, init_amplitude=0.5)


@pytest.fixture(scope="module")
def stream(tmp_path_factory):
    tel = tmp_path_factory.mktemp("tel")
    dns = ChannelDNS(CFG, telemetry=tel)
    dns.initialize()
    dns.run(5)
    dns.finalize_telemetry()
    return tel / "telemetry.jsonl"


def test_breakdown_statistics(stream):
    result = breakdown(stream)
    assert result["steps"] == 5
    assert result["wall_s"] > 0
    adv = result["sections"]["ns_advance"]
    assert adv["median_s"] > 0
    assert adv["total_s"] == pytest.approx(adv["mean_s"] * 5)
    assert adv["calls"] > 0
    # shares over the non-nested sections sum to one
    shares = sum(
        s["share"]
        for name, s in result["sections"].items()
        if name not in SectionTimers.NESTED
    )
    assert shares == pytest.approx(1.0)
    # the nested solve section is reported but outside the denominator
    assert "solve" in result["sections"]
    assert result["summary"]["overhead_frac"] is not None


def test_format_breakdown_paper_columns(stream):
    text = format_breakdown(breakdown(stream))
    lines = text.splitlines()
    assert "5 steps" in lines[0]
    names = [ln.split()[0] for ln in lines[2:] if ln.split()]
    # Table 9/10 order puts ns_advance before the alphabetical extras
    assert names.index("ns_advance") < names.index("nonlinear_products")
    assert "(nested)" in text  # solve flagged as nested
    assert "recorder overhead" in text
    assert "budget < 1%" in text


def test_report_cli(stream):
    out = subprocess.run(
        [sys.executable, "-m", "repro.telemetry.report", str(stream)],
        capture_output=True,
        text=True,
    )
    assert out.returncode == 0, out.stderr
    assert "ns_advance" in out.stdout
