"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no `wheel` package and no network, so the
PEP 517 editable path (which needs bdist_wheel) is unavailable; this shim
lets `setup.py develop` handle it.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
